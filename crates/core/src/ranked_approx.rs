//! Ranked approximate full disjunctions — the combination the paper
//! sketches at the end of Section 6: *"the algorithm
//! `APPROXINCREMENTALFD` can also be adapted to return tuples in ranking
//! order, for a monotonically c-determined ranking function. This can be
//! achieved by adapting `APPROXINCREMENTALFD` in the spirit of
//! `PRIORITYINCREMENTALFD`."*
//!
//! The construction mirrors Fig. 3 with the `JCC` tests replaced by
//! `A(…) ≥ τ`:
//!
//! * `n` priority queues seeded with every *acceptable* tuple set of size
//!   ≤ c containing a tuple of `Ri`, merged to a fixpoint;
//! * pop the globally highest-ranked entry, extend it A-maximally, run
//!   the candidate loop through `A`'s maximal subsets, print unless
//!   already printed.
//!
//! Both ingredients keep their own requirement: `f` must be
//! monotonically c-determined (Lemma 5.4's argument) and `A` acceptable
//! and efficiently computable (Theorem 6.6's).

use crate::approx::ApproxJoin;
use crate::incremental::FdConfig;
use crate::lists::CompleteStore;
use crate::priority::Rank;
use crate::ranking::MonotoneCDetermined;
use crate::stats::Stats;
use crate::tupleset::TupleSet;
use fd_relational::fxhash::{FxHashMap, FxHashSet};
use fd_relational::storage::Pager;
use fd_relational::{Database, RelId, TupleId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug, PartialEq, Eq)]
struct HeapItem {
    rank: Rank,
    gen: u32,
    slot: u32,
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        self.rank
            .cmp(&other.rank)
            .then(self.gen.cmp(&other.gen))
            .then(other.slot.cmp(&self.slot))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug)]
struct Entry {
    root: TupleId,
    set: TupleSet,
    gen: u32,
}

#[derive(Debug, Default)]
struct Queue {
    slots: Vec<Option<Entry>>,
    heap: BinaryHeap<HeapItem>,
    by_root: FxHashMap<TupleId, Vec<u32>>,
}

impl Queue {
    fn push(&mut self, root: TupleId, set: TupleSet, rank: f64, stats: &mut Stats) {
        stats.heap_pushes += 1;
        let slot = self.slots.len() as u32;
        self.slots.push(Some(Entry { root, set, gen: 0 }));
        self.by_root.entry(root).or_default().push(slot);
        self.heap.push(HeapItem {
            rank: Rank(rank),
            gen: 0,
            slot,
        });
    }

    fn item_valid(&self, item: &HeapItem) -> bool {
        matches!(&self.slots[item.slot as usize], Some(e) if e.gen == item.gen)
    }

    fn peek_rank(&mut self, stats: &mut Stats) -> Option<f64> {
        while let Some(top) = self.heap.peek() {
            if self.item_valid(top) {
                return Some(top.rank.0);
            }
            self.heap.pop();
            stats.heap_pops += 1;
        }
        None
    }

    fn pop(&mut self, stats: &mut Stats) -> Option<(TupleId, TupleSet)> {
        while let Some(item) = self.heap.pop() {
            stats.heap_pops += 1;
            if self.item_valid(&item) {
                let e = self.slots[item.slot as usize].take().expect("valid");
                return Some((e.root, e.set));
            }
        }
        None
    }
}

/// Streaming ranked `AFD(R, A, τ)`: yields `(tuple set, rank)` in
/// non-increasing rank order; every yielded set satisfies `A(T) ≥ τ` and
/// together they form exactly the approximate full disjunction.
pub struct RankedApproxFdIter<'db, A: ApproxJoin, F: MonotoneCDetermined> {
    db: &'db Database,
    a: A,
    f: F,
    tau: f64,
    /// Index of the first seed relation covered by `queues` (0 for the
    /// full run; the shard start for a parallel worker).
    rel_lo: usize,
    queues: Vec<Queue>,
    /// Printed results; `contains_exact` is the "already printed?" check,
    /// member-indexed `contains_superset` the line-11 analog.
    complete: CompleteStore,
    pager: Option<Pager<'db>>,
    stats: Stats,
}

impl<'db, A: ApproxJoin, F: MonotoneCDetermined> RankedApproxFdIter<'db, A, F> {
    /// Builds the iterator: enumerates the acceptable sets of size ≤ c
    /// per relation, merges mergeable pairs, seeds the queues.
    ///
    /// Both functions are taken by value; pass `&a` / `&f` to keep using
    /// borrowed ones (references implement the traits).
    pub fn new(db: &'db Database, a: A, tau: f64, f: F) -> Self {
        Self::with_config(db, a, tau, f, FdConfig::default())
    }

    /// Like [`new`](Self::new) with an explicit execution configuration:
    /// `engine` selects the `Complete` store structure, `page_size`
    /// switches the candidate scans to block-based execution.
    pub fn with_config(db: &'db Database, a: A, tau: f64, f: F, cfg: FdConfig) -> Self {
        let n = db.num_relations();
        Self::for_relations(db, a, tau, f, cfg, 0..n)
    }

    /// Builds a run restricted to the seed relations `rels` — the ranked-
    /// approximate counterpart of `RankedFdIter::for_relations`: the
    /// stream delivers, in rank order, exactly the acceptable maximal
    /// sets containing a tuple of one of those relations.
    pub(crate) fn for_relations(
        db: &'db Database,
        a: A,
        tau: f64,
        f: F,
        cfg: FdConfig,
        rels: std::ops::Range<usize>,
    ) -> Self {
        let mut stats = Stats::new();
        let c = f.c().max(1);
        let rel_lo = rels.start;
        let mut queues = Vec::with_capacity(rels.len());
        for rel_idx in rels {
            let ri = RelId(rel_idx as u16);
            let seeds = enumerate_acceptable(db, ri, c, &a, tau, &mut stats);
            let merged = merge_acceptable(db, seeds, &a, tau, &mut stats);
            let mut q = Queue::default();
            for (root, set) in merged {
                stats.rank_evals += 1;
                let rank = f.rank(db, &set);
                q.push(root, set, rank, &mut stats);
            }
            queues.push(q);
        }
        RankedApproxFdIter {
            db,
            a,
            f,
            tau,
            rel_lo,
            queues,
            complete: CompleteStore::new(cfg.engine),
            pager: cfg.page_size.map(|ps| Pager::new(db, ps)),
            stats,
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Pages fetched so far (block-based execution only).
    pub fn pages_read(&self) -> u64 {
        self.pager.as_ref().map_or(0, |p| p.stats().pages_read())
    }

    /// Rank of the next answer, without consuming it. `None` when the
    /// stream is exhausted.
    pub fn peek_rank(&mut self) -> Option<f64> {
        let mut best: Option<f64> = None;
        for qi in 0..self.queues.len() {
            if let Some(r) = self.queues[qi].peek_rank(&mut self.stats) {
                best = Some(match best {
                    Some(b) if b >= r => b,
                    _ => r,
                });
            }
        }
        best
    }

    /// A-maximal greedy extension (Fig. 6 lines 2–6).
    fn extend_maximal(&mut self, mut set: TupleSet) -> TupleSet {
        loop {
            self.stats.extension_passes += 1;
            let mut grew = false;
            for rel_idx in 0..self.db.num_relations() {
                let rel = RelId(rel_idx as u16);
                if set.tuple_from(self.db, rel).is_some() {
                    continue;
                }
                if !set
                    .tuples()
                    .iter()
                    .any(|&m| self.db.rels_connected(self.db.rel_of(m), rel))
                {
                    continue;
                }
                for tg in self.db.tuples_of(rel) {
                    self.stats.extension_scans += 1;
                    let mut members = set.tuples().to_vec();
                    let pos = members.partition_point(|&x| x < tg);
                    members.insert(pos, tg);
                    self.stats.approx_evals += 1;
                    if self.a.score(self.db, &members) >= self.tau {
                        set = crate::jcc::rebuild(self.db, members);
                        grew = true;
                        break;
                    }
                }
            }
            if !grew {
                return set;
            }
        }
    }

    /// One candidate tuple of the Fig. 5/Fig. 3 hybrid loop.
    fn candidate(&mut self, qi: usize, ri: RelId, set: &TupleSet, tb: TupleId) {
        self.stats.candidate_scans += 1;
        if set.contains(tb) {
            return;
        }
        let subsets = self
            .a
            .maximal_subsets(self.db, set, tb, self.tau, &mut self.stats);
        for t_prime in subsets {
            let Some(new_root) = t_prime.tuple_from(self.db, ri) else {
                continue;
            };
            if self
                .complete
                .contains_superset(&t_prime, new_root, &mut self.stats)
            {
                continue;
            }
            // Merge into a queue entry sharing the root when the
            // union stays acceptable.
            let mut merged = false;
            let candidates: Vec<u32> = self.queues[qi]
                .by_root
                .get(&new_root)
                .cloned()
                .unwrap_or_default();
            for slot in candidates {
                let Some(entry) = &self.queues[qi].slots[slot as usize] else {
                    continue;
                };
                self.stats.incomplete_scans += 1;
                let mut members: Vec<TupleId> = entry
                    .set
                    .tuples()
                    .iter()
                    .chain(t_prime.tuples().iter())
                    .copied()
                    .collect();
                members.sort_unstable();
                members.dedup();
                if !crate::jcc::one_tuple_per_relation(self.db, &members) {
                    continue;
                }
                self.stats.approx_evals += 1;
                if self.a.score(self.db, &members) >= self.tau {
                    self.stats.merges += 1;
                    let union = crate::jcc::rebuild(self.db, members);
                    let gen = entry.gen + 1;
                    self.stats.rank_evals += 1;
                    let rank = self.f.rank(self.db, &union);
                    self.queues[qi].slots[slot as usize] = Some(Entry {
                        root: new_root,
                        set: union,
                        gen,
                    });
                    self.queues[qi].heap.push(HeapItem {
                        rank: Rank(rank),
                        gen,
                        slot,
                    });
                    self.stats.heap_pushes += 1;
                    merged = true;
                    break;
                }
            }
            if merged {
                continue;
            }
            self.stats.rank_evals += 1;
            let rank = self.f.rank(self.db, &t_prime);
            self.queues[qi].push(new_root, t_prime, rank, &mut self.stats);
        }
    }

    fn step(&mut self) -> Option<(TupleSet, f64)> {
        loop {
            let mut best: Option<(usize, f64)> = None;
            for qi in 0..self.queues.len() {
                if let Some(r) = self.queues[qi].peek_rank(&mut self.stats) {
                    best = Some(match best {
                        Some((bi, br)) if br >= r => (bi, br),
                        _ => (qi, r),
                    });
                }
            }
            let (qi, _) = best?;
            let ri = RelId((self.rel_lo + qi) as u16);
            let (_, set) = self.queues[qi].pop(&mut self.stats)?;
            let set = self.extend_maximal(set);

            // Take the pager out so the candidate callback can borrow
            // `self`.
            let pager = self.pager.take();
            crate::getnext::scan_candidates(self.db, pager.as_ref(), |tb| {
                self.candidate(qi, ri, &set, tb)
            });
            self.pager = pager;

            if self.complete.contains_exact(set.tuples()) {
                continue;
            }
            self.complete.insert(set.clone(), set.tuples());
            self.stats.results += 1;
            self.stats.rank_evals += 1;
            let rank = self.f.rank(self.db, &set);
            return Some((set, rank));
        }
    }
}

impl<A: ApproxJoin, F: MonotoneCDetermined> Iterator for RankedApproxFdIter<'_, A, F> {
    type Item = (TupleSet, f64);

    fn next(&mut self) -> Option<Self::Item> {
        self.step()
    }
}

/// All acceptable connected sets of size ≤ c containing a tuple of `ri`,
/// by acceptable connectivity-preserving growth (antitone `A` guarantees
/// coverage).
fn enumerate_acceptable<A: ApproxJoin>(
    db: &Database,
    ri: RelId,
    c: usize,
    a: &A,
    tau: f64,
    stats: &mut Stats,
) -> Vec<(TupleId, TupleSet)> {
    let mut out = Vec::new();
    let mut seen: FxHashSet<Box<[TupleId]>> = FxHashSet::default();
    let mut stack: Vec<(TupleId, TupleSet)> = Vec::new();
    for root in db.tuples_of(ri) {
        stats.approx_evals += 1;
        if a.score(db, &[root]) >= tau {
            stack.push((root, TupleSet::singleton(db, root)));
        }
    }
    while let Some((root, set)) = stack.pop() {
        if !seen.insert(set.tuples().into()) {
            continue;
        }
        out.push((root, set.clone()));
        if set.len() >= c {
            continue;
        }
        for t in db.all_tuples() {
            if set.contains(t) || set.tuple_from(db, db.rel_of(t)).is_some() {
                continue;
            }
            if !set
                .tuples()
                .iter()
                .any(|&m| db.rels_connected(db.rel_of(m), db.rel_of(t)))
            {
                continue;
            }
            let mut members = set.tuples().to_vec();
            let pos = members.partition_point(|&x| x < t);
            members.insert(pos, t);
            stats.approx_evals += 1;
            if a.score(db, &members) >= tau {
                stack.push((root, crate::jcc::rebuild(db, members)));
            }
        }
    }
    out
}

/// Fig. 3 lines 5–8 with `A`-acceptance: merge same-root pairs whose
/// union stays acceptable, to a fixpoint.
fn merge_acceptable<A: ApproxJoin>(
    db: &Database,
    seeds: Vec<(TupleId, TupleSet)>,
    a: &A,
    tau: f64,
    stats: &mut Stats,
) -> Vec<(TupleId, TupleSet)> {
    let mut buckets: FxHashMap<TupleId, Vec<TupleSet>> = FxHashMap::default();
    let mut order: Vec<TupleId> = Vec::new();
    for (root, set) in seeds {
        let b = buckets.entry(root).or_default();
        if b.is_empty() {
            order.push(root);
        }
        b.push(set);
    }
    let mut out = Vec::new();
    for root in order {
        let mut sets = buckets.remove(&root).expect("bucket");
        'fixpoint: loop {
            for i in 0..sets.len() {
                for j in (i + 1)..sets.len() {
                    let mut members: Vec<TupleId> = sets[i]
                        .tuples()
                        .iter()
                        .chain(sets[j].tuples().iter())
                        .copied()
                        .collect();
                    members.sort_unstable();
                    members.dedup();
                    if !crate::jcc::one_tuple_per_relation(db, &members) {
                        continue;
                    }
                    stats.approx_evals += 1;
                    if a.score(db, &members) >= tau {
                        stats.merges += 1;
                        sets[i] = crate::jcc::rebuild(db, members);
                        sets.swap_remove(j);
                        continue 'fixpoint;
                    }
                }
            }
            break;
        }
        for set in sets {
            out.push((root, set));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::{AMin, ApproxAllIter, ProbScores};
    use crate::ranking::{FMax, ImpScores};
    use crate::sim::{EditDistanceSim, ExactSim};
    use fd_relational::tourist_database;

    #[test]
    fn ranked_approx_covers_afd_in_order() {
        let db = tourist_database();
        let a = AMin::new(ExactSim, ProbScores::uniform(&db, 1.0));
        let imp = ImpScores::from_fn(&db, |t| (t.0 % 5) as f64);
        let f = FMax::new(&imp);
        let tau = 0.9;
        let ranked: Vec<(TupleSet, f64)> = RankedApproxFdIter::new(&db, &a, tau, &f).collect();
        // Order.
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // Coverage = AFD.
        let mut got: Vec<TupleSet> = ranked.into_iter().map(|x| x.0).collect();
        got.sort();
        let mut want: Vec<TupleSet> = ApproxAllIter::new(&db, &a, tau).collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn approx_top_k_is_prefix() {
        let db = tourist_database();
        let a = AMin::new(EditDistanceSim, ProbScores::uniform(&db, 1.0));
        let imp = ImpScores::from_fn(&db, |t| t.0 as f64);
        let f = FMax::new(&imp);
        let all: Vec<_> = RankedApproxFdIter::new(&db, &a, 0.8, &f).collect();
        for k in 0..=all.len() {
            let got: Vec<_> = RankedApproxFdIter::new(&db, &a, 0.8, &f).take(k).collect();
            assert_eq!(got.len(), k);
            for (g, w) in got.iter().zip(all.iter()) {
                assert_eq!(g.1, w.1);
            }
        }
    }

    #[test]
    fn sharded_runs_cover_the_ranked_approx_stream() {
        let db = tourist_database();
        let a = AMin::new(ExactSim, ProbScores::uniform(&db, 1.0));
        let imp = ImpScores::from_fn(&db, |t| (t.0 % 5) as f64);
        let f = FMax::new(&imp);
        let full: Vec<TupleSet> = RankedApproxFdIter::new(&db, &a, 0.9, &f)
            .map(|(s, _)| s)
            .collect();
        let mut union: Vec<TupleSet> = Vec::new();
        for (lo, hi) in [(0usize, 2usize), (2, 3)] {
            let shard =
                RankedApproxFdIter::for_relations(&db, &a, 0.9, &f, FdConfig::default(), lo..hi);
            union.extend(shard.map(|(s, _)| s));
        }
        union.sort();
        union.dedup();
        let mut want = full;
        want.sort();
        assert_eq!(union, want);
    }

    #[test]
    fn exact_similarity_reduces_to_plain_ranked_fd() {
        let db = tourist_database();
        let a = AMin::new(ExactSim, ProbScores::uniform(&db, 1.0));
        let imp = ImpScores::from_fn(&db, |t| (10 - t.0) as f64);
        let f = FMax::new(&imp);
        let approx_ranks: Vec<f64> = RankedApproxFdIter::new(&db, &a, 1.0, &f)
            .map(|x| x.1)
            .collect();
        let exact_ranks: Vec<f64> = crate::priority::RankedFdIter::new(&db, &f)
            .map(|x| x.1)
            .collect();
        assert_eq!(approx_ranks, exact_ranks);
    }
}
