//! `FdSession` — the transactional session over a live full disjunction.
//!
//! The paper's incremental algorithm (Theorem 4.10) maintains the full
//! disjunction one tuple at a time; the any-k line of work frames the
//! consumer side as a *long-lived enumeration session* that stays
//! incremental under demand. [`FdSession`] is that session: it owns the
//! database snapshot and the materialized result (plus an optional
//! ranked top-k window), accepts mutations in transactional
//! [`DeltaBatch`]es, and per [`commit`](FdSession::commit) runs **one**
//! maintenance pass — deletes processed as a group, inserts seeded
//! together in one multi-seed `FDi` run ([`crate::delta::delta_batch`])
//! — returning the consolidated, net-effect [`FdEvent`] list. Consumers
//! that would rather be pushed than poll register an [`EventSink`]
//! ([`subscribe`](FdSession::subscribe)); [`VecSink`] collects, a
//! [`ChannelSink`] forwards into an `mpsc` channel a network front end
//! can drain.
//!
//! ```
//! use fd_core::{FdQuery, FdSession};
//! use fd_relational::{tourist_database, RelId, TupleId};
//!
//! let db = tourist_database();
//! let mut session = FdQuery::over(&db).session()?;
//! assert_eq!(session.len(), 6); // Table 2 of the paper
//!
//! // Three mutations, one transaction, one maintenance pass.
//! let mut batch = session.begin();
//! batch
//!     .insert(RelId(0), vec!["Chile".into(), "arid".into()])
//!     .insert(RelId(0), vec!["Peru".into(), "arid".into()])
//!     .delete(TupleId(3));
//! let commit = session.commit(batch)?;
//! assert_eq!(commit.changes.len(), 3);
//! assert_eq!(session.maintenance_passes(), 1);
//! assert!(session.verify_snapshot());
//! # Ok::<(), fd_core::FdError>(())
//! ```

use crate::delta::delta_batch;
use crate::error::FdError;
use crate::incremental::{canonicalize, FdConfig};
use crate::obs::{Counter, Gauge, Histogram, Registry};
use crate::query::FdQuery;
use crate::ranking::{canonical_rank_order, RankingFunction};
use crate::stats::Stats;
use crate::store::{FsyncPolicy, Store, StoreError, Wal};
use crate::tupleset::TupleSet;
use fd_relational::fxhash::FxHashMap;
use fd_relational::{apply_batch, validate_batch, Change, ChangeLog, Database, Delta, TupleId};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError};
use std::time::{Duration, Instant};

pub use fd_relational::DeltaBatch;

/// One change to the materialized full disjunction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FdEvent {
    /// A tuple set entered the full disjunction.
    Added(TupleSet),
    /// A tuple set left the full disjunction (it was subsumed by a new
    /// result, or a member tuple was deleted).
    Retracted(TupleSet),
}

impl FdEvent {
    /// The tuple set the event concerns.
    pub fn set(&self) -> &TupleSet {
        match self {
            FdEvent::Added(s) | FdEvent::Retracted(s) => s,
        }
    }

    /// Renders the event the way `fd watch` prints it: `+ {c1, a1}` /
    /// `- {c1, a1}`.
    pub fn label(&self, db: &Database) -> String {
        match self {
            FdEvent::Added(s) => format!("+ {}", s.label(db)),
            FdEvent::Retracted(s) => format!("- {}", s.label(db)),
        }
    }
}

/// What one commit did to the ranked top-k window.
#[derive(Debug, Clone, Default)]
pub struct TopKUpdate {
    /// The underlying result-set changes (retractions first).
    pub events: Vec<FdEvent>,
    /// Sets that entered the top-k window, with their ranks.
    pub entered: Vec<(TupleSet, f64)>,
    /// Sets that left the top-k window (retracted or outranked).
    pub left: Vec<TupleSet>,
}

/// A push subscriber of an [`FdSession`]: called once per [`FdEvent`]
/// of every commit, in event order (retractions first), then once per
/// commit with the whole [`Commit`] (and — on ranked sessions — once
/// with the [`TopKUpdate`]).
///
/// Sinks must not mutate the session (they receive `&mut self`, not the
/// session); a sink whose consumer went away should ignore the
/// notification rather than panic. Sinks are `Send` so a session can be
/// shared across threads (the `fd serve` daemon wraps one in
/// [`crate::serve::SessionHandle`]).
pub trait EventSink: Send {
    /// One result-set change of a commit.
    fn on_event(&mut self, event: &FdEvent);

    /// The ranked window's net change of a commit (ranked sessions only;
    /// also called when the window did not move, with empty
    /// `entered`/`left`). Default: ignore.
    fn on_topk(&mut self, update: &TopKUpdate) {
        let _ = update;
    }

    /// The consolidated commit, delivered once per commit after its
    /// per-event [`on_event`](Self::on_event) calls, together with the
    /// post-commit database (so a sink can render labels without holding
    /// a reference into the session). Default: ignore.
    fn on_commit(&mut self, commit: &Commit, db: &Database) {
        let _ = (commit, db);
    }
}

/// Identifies one subscribed [`EventSink`] of a session, as returned by
/// [`FdSession::subscribe`]; pass it to [`FdSession::unsubscribe`] to
/// deregister (e.g. when a network subscriber disconnects).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SinkId(u64);

impl std::fmt::Display for SinkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// An [`EventSink`] that collects into shared vectors. `Clone` hands out
/// another handle to the same storage, so one clone can be subscribed
/// while the other is drained:
///
/// ```
/// use fd_core::{FdSession, VecSink};
/// use fd_relational::{tourist_database, RelId};
///
/// let mut session = FdSession::new(tourist_database());
/// let sink = VecSink::new();
/// session.subscribe(sink.clone());
/// let mut batch = session.begin();
/// batch.insert(RelId(0), vec!["Chile".into(), "arid".into()]);
/// session.commit(batch)?;
/// assert_eq!(sink.events().len(), 1);
/// # Ok::<(), fd_core::FdError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    inner: std::sync::Arc<std::sync::Mutex<VecSinkState>>,
}

#[derive(Debug, Default)]
struct VecSinkState {
    events: Vec<FdEvent>,
    updates: Vec<TopKUpdate>,
}

impl VecSink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Every event delivered so far, oldest first.
    ///
    /// Poisoning is recovered, not propagated: each push below is a
    /// single `Vec::push` with no unwind point mid-update, so a
    /// poisoned sink still holds a consistent event list and a reader
    /// must not die over an unrelated writer's panic.
    pub fn events(&self) -> Vec<FdEvent> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .events
            .clone()
    }

    /// Every ranked-window update delivered so far, oldest first.
    pub fn updates(&self) -> Vec<TopKUpdate> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .updates
            .clone()
    }

    /// Drains and returns the collected events.
    pub fn take_events(&self) -> Vec<FdEvent> {
        std::mem::take(
            &mut self
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .events,
        )
    }
}

impl EventSink for VecSink {
    fn on_event(&mut self, event: &FdEvent) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .events
            .push(event.clone());
    }

    fn on_topk(&mut self, update: &TopKUpdate) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .updates
            .push(update.clone());
    }
}

/// An [`EventSink`] that forwards into `std::sync::mpsc` channels — the
/// push-delivery half a network front end sits on. Send errors (the
/// receiver hung up) are ignored: a departed subscriber must not take
/// the session down.
#[derive(Debug)]
pub struct ChannelSink {
    events: std::sync::mpsc::Sender<FdEvent>,
    updates: Option<std::sync::mpsc::Sender<TopKUpdate>>,
}

impl ChannelSink {
    /// A sink delivering every [`FdEvent`] to the returned receiver.
    pub fn new() -> (Self, std::sync::mpsc::Receiver<FdEvent>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (
            ChannelSink {
                events: tx,
                updates: None,
            },
            rx,
        )
    }

    /// Like [`new`](Self::new), additionally delivering every
    /// [`TopKUpdate`] of a ranked session to the second receiver.
    pub fn with_topk() -> (
        Self,
        std::sync::mpsc::Receiver<FdEvent>,
        std::sync::mpsc::Receiver<TopKUpdate>,
    ) {
        let (tx, rx) = std::sync::mpsc::channel();
        let (utx, urx) = std::sync::mpsc::channel();
        (
            ChannelSink {
                events: tx,
                updates: Some(utx),
            },
            rx,
            urx,
        )
    }
}

impl EventSink for ChannelSink {
    fn on_event(&mut self, event: &FdEvent) {
        let _ = self.events.send(event.clone());
    }

    fn on_topk(&mut self, update: &TopKUpdate) {
        if let Some(tx) = &self.updates {
            let _ = tx.send(update.clone());
        }
    }
}

/// Wall-clock breakdown of one [`FdSession::commit`], phase by phase.
///
/// The same durations land in the session registry's
/// `fd_commit_*_seconds` histograms; carrying them on the [`Commit`] as
/// well lets per-commit consumers (`fd serve --log`, tests) report a
/// single commit without reading aggregates. `fanout` (and therefore
/// the portion of `total` after the sink loop) is measured *after* the
/// subscribers ran, so sinks themselves observe it as zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommitTimings {
    /// Validating and applying the batch to the database atomically.
    pub validate: Duration,
    /// The single delta-maintenance pass ([`crate::delta::delta_batch`]).
    pub maintain: Duration,
    /// Folding retractions/additions into the materialized result and
    /// the ranked window, and diffing the top-k window.
    pub window: Duration,
    /// Delivering events to the subscribed sinks.
    pub fanout: Duration,
    /// End-to-end commit time (validate + maintain + window + fanout,
    /// plus bookkeeping).
    pub total: Duration,
}

/// The realized outcome of one [`FdSession::commit`].
#[derive(Debug, Clone)]
pub struct Commit {
    /// The realized mutations, in application order, with the tuple ids
    /// the database assigned.
    pub changes: Vec<Change>,
    /// The net effect on the full disjunction — retractions first, then
    /// additions. A set the batch would have both added and retracted
    /// under singleton replay never appears.
    pub events: Vec<FdEvent>,
    /// The ranked window's net change (ranked sessions only).
    pub topk: Option<TopKUpdate>,
    /// Work counters of the single maintenance pass.
    pub stats: Stats,
    /// Wall-clock phase breakdown of this commit (zero on the empty
    /// no-op commit; `fanout`/post-fanout `total` are zero as seen *by*
    /// sinks).
    pub timings: CommitTimings,
}

impl Commit {
    /// Tuple ids the commit's inserts received, in batch order.
    pub fn inserted(&self) -> Vec<TupleId> {
        self.changes
            .iter()
            .filter_map(|c| match c {
                Change::Inserted { tuple, .. } => Some(*tuple),
                Change::Removed { .. } => None,
            })
            .collect()
    }

    /// Tuple ids the commit removed, in batch order.
    pub fn removed(&self) -> Vec<TupleId> {
        self.changes
            .iter()
            .filter_map(|c| match c {
                Change::Removed { tuple, .. } => Some(*tuple),
                Change::Inserted { .. } => None,
            })
            .collect()
    }
}

/// The maintained ranked view of a ranked session: every current result
/// with its rank, sorted by [`canonical_rank_order`]; the window is the
/// first `k` entries. Maintained incrementally — binary-search insert
/// per added set, binary-search removal (by *recorded* rank, so the
/// ranking function never re-evaluates a retracted set against the
/// mutated database) per retracted set; the only full sort happens at
/// construction.
struct RankedView<'q> {
    f: Box<dyn RankingFunction + Send + 'q>,
    k: usize,
    ranked: Vec<(TupleSet, f64)>,
    rank_of: FxHashMap<Box<[TupleId]>, f64>,
}

impl std::fmt::Debug for RankedView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RankedView")
            .field("k", &self.k)
            .field("len", &self.ranked.len())
            .finish()
    }
}

impl<'q> RankedView<'q> {
    fn new(
        db: &Database,
        f: Box<dyn RankingFunction + Send + 'q>,
        k: usize,
        results: &[TupleSet],
    ) -> Self {
        let mut ranked: Vec<(TupleSet, f64)> =
            results.iter().map(|s| (s.clone(), f.rank(db, s))).collect();
        ranked.sort_by(|a, b| canonical_rank_order(a.1, &a.0, b.1, &b.0));
        let rank_of = ranked
            .iter()
            .map(|(s, r)| (Box::<[TupleId]>::from(s.tuples()), *r))
            .collect();
        RankedView {
            f,
            k,
            ranked,
            rank_of,
        }
    }

    fn window(&self) -> &[(TupleSet, f64)] {
        &self.ranked[..self.k.min(self.ranked.len())]
    }

    fn remove(&mut self, set: &TupleSet) {
        let Some(rank) = self.rank_of.remove(set.tuples()) else {
            debug_assert!(false, "retracting unknown ranked result {set}");
            return;
        };
        let found = self
            .ranked
            .binary_search_by(|e| canonical_rank_order(e.1, &e.0, rank, set));
        match found {
            Ok(pos) => {
                self.ranked.remove(pos);
            }
            Err(_) => {
                // Unreachable with a consistent map, but stay lossless.
                debug_assert!(false, "recorded rank not found for {set}");
                if let Some(pos) = self
                    .ranked
                    .iter()
                    .position(|(s, _)| s.tuples() == set.tuples())
                {
                    self.ranked.remove(pos);
                }
            }
        }
    }

    fn add(&mut self, db: &Database, set: &TupleSet) {
        let rank = self.f.rank(db, set);
        self.rank_of.insert(set.tuples().into(), rank);
        let probe = (set.clone(), rank);
        let pos = self
            .ranked
            .binary_search_by(|e| canonical_rank_order(e.1, &e.0, probe.1, &probe.0))
            .unwrap_or_else(|p| p);
        self.ranked.insert(pos, probe);
    }
}

/// Pre-bound handles into the session's [`Registry`] — resolved once at
/// construction so the commit hot path touches only atomics, never the
/// registry lock.
#[derive(Debug)]
struct SessionMetrics {
    registry: Arc<Registry>,
    commits: Arc<Counter>,
    aborts: Arc<Counter>,
    events: Arc<Counter>,
    results: Arc<Gauge>,
    subscribers: Arc<Gauge>,
    materialize: Arc<Histogram>,
    validate: Arc<Histogram>,
    maintain: Arc<Histogram>,
    window: Arc<Histogram>,
    fanout: Arc<Histogram>,
    total: Arc<Histogram>,
    wal_appends: Arc<Counter>,
    wal_bytes: Arc<Counter>,
    wal_fsync: Arc<Histogram>,
    snapshot: Arc<Histogram>,
    checkpoint_errors: Arc<Counter>,
    recovery_replayed: Arc<Counter>,
    index_probes: Arc<Counter>,
    index_hits: Arc<Counter>,
    intern_symbols: Arc<Gauge>,
    /// Last-seen cumulative [`Database`] probe counters, so each fold
    /// adds only the delta to the monotone registry families.
    seen_probes: AtomicU64,
    seen_hits: AtomicU64,
    /// One counter per [`Stats`] field, in [`Stats::fields`] order.
    ops: Vec<Arc<Counter>>,
}

impl SessionMetrics {
    fn new() -> Self {
        let registry = Arc::new(Registry::new());
        let ops = Stats::new()
            .fields()
            .iter()
            .map(|(name, _)| {
                registry.counter(
                    &format!("fd_ops_total{{op=\"{name}\"}}"),
                    "Cumulative maintenance work counters (the paper's Section 7 operation counts).",
                )
            })
            .collect();
        SessionMetrics {
            commits: registry.counter("fd_commits_total", "Successful non-empty session commits."),
            aborts: registry.counter(
                "fd_commit_aborts_total",
                "Commits rejected by batch validation (nothing changed).",
            ),
            events: registry.counter(
                "fd_events_total",
                "Net result changes (added + retracted) across all commits.",
            ),
            results: registry.gauge(
                "fd_results",
                "Tuple sets currently in the full disjunction.",
            ),
            subscribers: registry.gauge("fd_subscribers", "Currently subscribed event sinks."),
            materialize: registry.histogram(
                "fd_materialize_seconds",
                "Initial full-disjunction materialization time.",
            ),
            validate: registry.histogram(
                "fd_commit_validate_seconds",
                "Commit phase: batch validation and atomic apply.",
            ),
            maintain: registry.histogram(
                "fd_commit_maintain_seconds",
                "Commit phase: the single delta-maintenance pass.",
            ),
            window: registry.histogram(
                "fd_commit_window_seconds",
                "Commit phase: materialized-result and ranked-window update.",
            ),
            fanout: registry.histogram(
                "fd_commit_fanout_seconds",
                "Commit phase: subscriber event fan-out.",
            ),
            total: registry.histogram("fd_commit_seconds", "End-to-end commit latency."),
            wal_appends: registry.counter(
                "fd_wal_appends_total",
                "Committed batches appended to the write-ahead log.",
            ),
            wal_bytes: registry.counter(
                "fd_wal_bytes_total",
                "Bytes appended to the write-ahead log.",
            ),
            wal_fsync: registry.histogram(
                "fd_wal_fsync_us",
                "WAL append + flush latency per commit, under the session's fsync policy.",
            ),
            snapshot: registry.histogram(
                "fd_snapshot_us",
                "Snapshot write + WAL truncation latency per checkpoint.",
            ),
            checkpoint_errors: registry.counter(
                "fd_checkpoint_errors_total",
                "Failed automatic compaction checkpoints (the commits stayed durable in the WAL).",
            ),
            recovery_replayed: registry.counter(
                "fd_recovery_replayed_batches",
                "WAL-tail batches replayed through maintenance during recovery.",
            ),
            // Registered eagerly (not on first probe) so a scrape taken
            // before any commit already shows the families at zero.
            index_probes: registry.counter(
                "fd_index_probes_total",
                "Join-column index probes (candidate lookups by bound shared attributes).",
            ),
            index_hits: registry.counter(
                "fd_index_hits_total",
                "Index probes answered from posting lists (the rest fell back to a scan).",
            ),
            intern_symbols: registry.gauge(
                "fd_intern_symbols",
                "Distinct strings in the process-wide intern catalog.",
            ),
            seen_probes: AtomicU64::new(0),
            seen_hits: AtomicU64::new(0),
            ops,
            registry,
        }
    }

    /// Folds one commit's operation counters into the monotone
    /// `fd_ops_total{op=…}` series.
    fn record_ops(&self, stats: &Stats) {
        for ((_, value), counter) in stats.fields().iter().zip(&self.ops) {
            counter.add(*value);
        }
    }

    /// Folds the database's cumulative join-index probe counters (as
    /// deltas since the last fold) and the current intern-catalog size
    /// into the registry.
    fn record_index(&self, db: &Database) {
        let probes = db.index_probes();
        let hits = db.index_hits();
        let prev_probes = self.seen_probes.swap(probes, Ordering::Relaxed);
        let prev_hits = self.seen_hits.swap(hits, Ordering::Relaxed);
        self.index_probes.add(probes.saturating_sub(prev_probes));
        self.index_hits.add(hits.saturating_sub(prev_hits));
        self.intern_symbols
            .set(fd_relational::interner::symbol_count() as i64);
    }
}

/// WAL size at which a durable commit triggers an automatic checkpoint
/// (snapshot + log truncation). Override per session with
/// [`FdSession::set_wal_compaction_threshold`].
const DEFAULT_WAL_COMPACTION_BYTES: u64 = 1 << 20;

/// The durable half of a session: the data directory, the open log, and
/// the policy knobs. Present only after
/// [`persist_to`](FdSession::persist_to) or [`open`](FdSession::open).
#[derive(Debug)]
struct Durability {
    store: Store,
    wal: Wal,
    policy: FsyncPolicy,
    /// WAL bytes that trigger truncate-on-snapshot compaction.
    threshold: u64,
    /// Commits folded into the snapshot this session recovered from —
    /// the session's own [`ChangeLog`] continues the count from here.
    base_seq: u64,
}

fn storage_err(e: StoreError) -> FdError {
    FdError::Storage {
        reason: e.to_string(),
    }
}

/// A transactional session over a live full disjunction.
///
/// Build one with [`FdQuery::session`] (every execution knob of the
/// builder — engine, page size, `.parallel(n)` for the initial
/// materialization, `.ranked(f).top_k(k)` for a maintained window —
/// carries over) or directly with [`new`](Self::new) /
/// [`ranked`](Self::ranked). Then, per transaction:
///
/// 1. [`begin`](Self::begin) an empty [`DeltaBatch`];
/// 2. queue mutations with [`DeltaBatch::insert`] / [`DeltaBatch::delete`];
/// 3. [`commit`](Self::commit) — the whole batch lands atomically on the
///    database (or none of it does, with a typed
///    [`FdError::Mutation`]), **one** maintenance pass brings the
///    materialized result up to date, and the consolidated events go to
///    the caller and every subscribed [`EventSink`].
///
/// The lifetime `'q` bounds the borrows of the ranking function and the
/// subscribed sinks; a plain session with owned sinks is
/// `FdSession<'static>`.
#[derive(Debug)]
pub struct FdSession<'q> {
    db: Database,
    cfg: FdConfig,
    /// Current results, in no particular order.
    results: Vec<TupleSet>,
    /// Canonical member list → position in `results`.
    index: FxHashMap<Box<[TupleId]>, usize>,
    log: ChangeLog,
    ranked: Option<RankedView<'q>>,
    sinks: Vec<(SinkId, Box<dyn EventSink + 'q>)>,
    next_sink: u64,
    passes: u64,
    metrics: SessionMetrics,
    /// [`Stats`] summed over every maintenance pass — the monotone
    /// counters behind `fd_ops_total` and the serve `stats` reply.
    total_stats: Stats,
    /// Durable state, when this session is backed by a data directory.
    durability: Option<Durability>,
}

impl std::fmt::Debug for dyn EventSink + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("dyn EventSink")
    }
}

impl<'q> FdSession<'q> {
    /// Materializes the full disjunction of `db` and opens a plain
    /// session over it.
    pub fn new(db: Database) -> Self {
        Self::with_config(db, FdConfig::default())
    }

    /// Like [`new`](Self::new) with explicit engine/block configuration
    /// for the initial computation and every maintenance pass.
    pub fn with_config(db: Database, cfg: FdConfig) -> Self {
        Self::with_config_parallel(db, cfg, None)
    }

    /// Like [`with_config`](Self::with_config), additionally computing
    /// the *initial* materialization with up to `threads` workers.
    /// Maintenance passes stay sequential — each one is already
    /// proportional to the change, not the database.
    ///
    /// The parallel materialization always runs with
    /// [`crate::InitStrategy::Singletons`] (the reuse strategies describe
    /// a sequence of prior runs the independent workers do not have; the
    /// computed set is identical either way); a non-default `cfg.init`
    /// still applies to the sequential maintenance runs.
    pub fn with_config_parallel(db: Database, cfg: FdConfig, threads: Option<usize>) -> Self {
        let metrics = SessionMetrics::new();
        let start = Instant::now();
        let results = materialize(&db, cfg, threads);
        metrics.materialize.record(start.elapsed());
        Self::assemble(db, cfg, results, None, metrics)
    }

    /// Materializes the full disjunction of `db` and opens a **ranked**
    /// session: on top of the plain maintenance, the k highest-ranking
    /// results under `f` are kept current and every commit reports the
    /// window's net change ([`Commit::topk`]).
    pub fn ranked(db: Database, f: impl RankingFunction + Send + 'q, k: usize) -> Self {
        Self::ranked_with_config_parallel(db, f, k, FdConfig::default(), None)
    }

    /// [`ranked`](Self::ranked) with explicit configuration and optional
    /// parallel initial materialization.
    pub fn ranked_with_config_parallel(
        db: Database,
        f: impl RankingFunction + Send + 'q,
        k: usize,
        cfg: FdConfig,
        threads: Option<usize>,
    ) -> Self {
        let metrics = SessionMetrics::new();
        let start = Instant::now();
        let results = materialize(&db, cfg, threads);
        metrics.materialize.record(start.elapsed());
        let f: Box<dyn RankingFunction + Send + 'q> = Box::new(f);
        Self::assemble(db, cfg, results, Some((f, k)), metrics)
    }

    fn assemble(
        db: Database,
        cfg: FdConfig,
        results: Vec<TupleSet>,
        ranking: Option<(Box<dyn RankingFunction + Send + 'q>, usize)>,
        metrics: SessionMetrics,
    ) -> Self {
        let index = results
            .iter()
            .enumerate()
            .map(|(i, s)| (Box::<[TupleId]>::from(s.tuples()), i))
            .collect();
        let ranked = ranking.map(|(f, k)| RankedView::new(&db, f, k, &results));
        metrics.results.set(results.len() as i64);
        metrics.record_index(&db);
        FdSession {
            db,
            cfg,
            results,
            index,
            log: ChangeLog::new(),
            ranked,
            sinks: Vec::new(),
            next_sink: 0,
            passes: 0,
            metrics,
            total_stats: Stats::new(),
            durability: None,
        }
    }

    /// The current database snapshot.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The execution configuration every maintenance pass uses.
    pub fn config(&self) -> FdConfig {
        self.cfg
    }

    /// Number of tuple sets currently in the full disjunction.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Is the full disjunction empty?
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// The current results in unspecified order; see
    /// [`canonical_results`](Self::canonical_results) for a
    /// deterministic view.
    pub fn results(&self) -> &[TupleSet] {
        &self.results
    }

    /// The current results in canonical (member-id) order.
    pub fn canonical_results(&self) -> Vec<TupleSet> {
        canonicalize(self.results.clone())
    }

    /// Is this exact tuple set currently a result?
    pub fn contains(&self, tuples: &[TupleId]) -> bool {
        self.index.contains_key(tuples)
    }

    /// The realized mutation history, grouped by commit, oldest first.
    pub fn changelog(&self) -> &ChangeLog {
        &self.log
    }

    /// Is this a ranked session (maintained top-k window)?
    pub fn is_ranked(&self) -> bool {
        self.ranked.is_some()
    }

    /// The ranked window size `k` (ranked sessions only).
    pub fn k(&self) -> Option<usize> {
        self.ranked.as_ref().map(|r| r.k)
    }

    /// The current top-k window — up to `k` `(set, rank)` pairs in
    /// non-increasing rank order — or `None` on a plain session.
    pub fn window(&self) -> Option<&[(TupleSet, f64)]> {
        self.ranked.as_ref().map(|r| r.window())
    }

    /// The full maintained ranking (the window is its first `k`
    /// entries), or `None` on a plain session.
    pub fn ranking(&self) -> Option<&[(TupleSet, f64)]> {
        self.ranked.as_ref().map(|r| &r.ranked[..])
    }

    /// Number of maintenance passes run so far — exactly one per
    /// non-empty [`commit`](Self::commit), independent of how many
    /// mutations each batch carried.
    pub fn maintenance_passes(&self) -> u64 {
        self.passes
    }

    /// The session's metrics registry: commit/abort/event counters,
    /// per-phase commit latency histograms, result/subscriber gauges and
    /// the monotone `fd_ops_total{op=…}` work counters. Per session, not
    /// global — concurrent sessions never share a registry. The serve
    /// daemon ([`crate::serve::Server`]) adds its own metrics here and
    /// exposes the combined registry over the `metrics` wire command and
    /// the optional HTTP scrape endpoint.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.metrics.registry
    }

    /// [`Stats`] work counters summed over every maintenance pass so
    /// far — the session-lifetime analogue of the per-commit
    /// [`Commit::stats`].
    pub fn stats(&self) -> &Stats {
        &self.total_stats
    }

    /// Registers a push subscriber. Every subsequent commit delivers its
    /// events (and, on ranked sessions, its [`TopKUpdate`]) to the sink
    /// after the session's own state is up to date. The returned
    /// [`SinkId`] deregisters the sink via
    /// [`unsubscribe`](Self::unsubscribe).
    pub fn subscribe(&mut self, sink: impl EventSink + 'q) -> SinkId {
        let id = SinkId(self.next_sink);
        self.next_sink += 1;
        self.sinks.push((id, Box::new(sink)));
        self.metrics.subscribers.set(self.sinks.len() as i64);
        id
    }

    /// Deregisters a subscriber, dropping its sink (for a
    /// [`ChannelSink`] that closes the channel, ending any receiver
    /// loop). Returns whether the id was subscribed — unsubscribing
    /// twice is not an error, so a departing network client and its
    /// forwarding thread can both reap without coordination.
    pub fn unsubscribe(&mut self, id: SinkId) -> bool {
        let before = self.sinks.len();
        self.sinks.retain(|(sid, _)| *sid != id);
        self.metrics.subscribers.set(self.sinks.len() as i64);
        self.sinks.len() < before
    }

    /// Number of currently subscribed sinks.
    pub fn num_subscribers(&self) -> usize {
        self.sinks.len()
    }

    /// Opens an empty mutation batch. Purely a convenience —
    /// [`DeltaBatch::new`] is the same thing — that reads well at call
    /// sites: `let mut batch = session.begin();`.
    pub fn begin(&self) -> DeltaBatch {
        DeltaBatch::new()
    }

    /// Applies one mutation as a batch of one. See
    /// [`commit`](Self::commit).
    pub fn apply(&mut self, delta: Delta) -> Result<Commit, FdError> {
        self.commit(DeltaBatch::from(delta))
    }

    /// Commits a batch: validates and applies all `k` mutations to the
    /// database atomically, runs **one** maintenance pass over the net
    /// change, updates the materialized result (and the ranked window),
    /// notifies every subscriber, and returns the realized [`Commit`].
    ///
    /// On error (any mutation rejected by the relational layer) nothing
    /// changes: not the database, not the results, not the pass counter.
    /// An empty batch is a no-op commit: no maintenance pass, no events,
    /// no changelog entry.
    pub fn commit(&mut self, batch: DeltaBatch) -> Result<Commit, FdError> {
        if batch.is_empty() {
            return Ok(Commit {
                changes: Vec::new(),
                events: Vec::new(),
                topk: self.ranked.as_ref().map(|_| TopKUpdate::default()),
                stats: Stats::new(),
                timings: CommitTimings::default(),
            });
        }
        let commit_start = Instant::now();
        // WAL-before-apply: a durable session logs the *pending* batch
        // (tuple-id allocation is deterministic, so replaying it through
        // this same path reproduces identical ids) before touching any
        // in-memory state — a batch is acked only once it is on disk.
        // Validation runs first so a batch the database would reject
        // never reaches the log.
        if let Some(d) = self.durability.as_mut() {
            if let Err(e) = validate_batch(&self.db, &batch) {
                self.metrics.aborts.inc();
                return Err(e.into());
            }
            // This commit's global sequence number: the snapshot's
            // fold-in point plus every batch committed since. Recovery
            // replays only records past the snapshot's seq, so a stale
            // log left by a crash mid-checkpoint is never double-applied.
            let seq = d.base_seq + self.log.num_batches() as u64 + 1;
            let append_start = Instant::now();
            match d.wal.append(seq, &batch, d.policy) {
                Ok(bytes) => {
                    self.metrics.wal_fsync.record(append_start.elapsed());
                    self.metrics.wal_appends.inc();
                    self.metrics.wal_bytes.add(bytes);
                }
                Err(e) => return Err(storage_err(e)),
            }
        }
        let changes = match apply_batch(&mut self.db, batch) {
            Ok(changes) => changes,
            Err(e) => {
                self.metrics.aborts.inc();
                return Err(e.into());
            }
        };
        let validate = commit_start.elapsed();
        self.log.record_batch(changes.iter().copied());

        let mut inserted: Vec<TupleId> = Vec::new();
        let mut removed: Vec<TupleId> = Vec::new();
        for change in &changes {
            match change {
                Change::Inserted { tuple, .. } => inserted.push(*tuple),
                Change::Removed { tuple, .. } => removed.push(*tuple),
            }
        }

        // THE one maintenance pass of this commit.
        let maintain_start = Instant::now();
        let delta = delta_batch(&self.db, &inserted, &removed, &self.results, self.cfg);
        let maintain = maintain_start.elapsed();
        self.passes += 1;

        let window_start = Instant::now();
        let window_before: Vec<TupleSet> = self
            .ranked
            .as_ref()
            .map(|r| r.window().iter().map(|(s, _)| s.clone()).collect())
            .unwrap_or_default();

        let mut events = Vec::with_capacity(delta.retracted.len() + delta.added.len());
        for set in delta.retracted {
            self.remove_set(&set);
            if let Some(r) = &mut self.ranked {
                r.remove(&set);
            }
            events.push(FdEvent::Retracted(set));
        }
        for set in delta.added {
            self.add_set(set.clone());
            if let Some(r) = &mut self.ranked {
                r.add(&self.db, &set);
            }
            events.push(FdEvent::Added(set));
        }

        let topk = self.ranked.as_ref().map(|r| {
            let after = r.window();
            let entered = after
                .iter()
                .filter(|(s, _)| !window_before.iter().any(|b| b.tuples() == s.tuples()))
                .cloned()
                .collect();
            let left = window_before
                .into_iter()
                .filter(|b| !after.iter().any(|(s, _)| s.tuples() == b.tuples()))
                .collect();
            TopKUpdate {
                events: events.clone(),
                entered,
                left,
            }
        });

        let window = window_start.elapsed();

        let mut commit = Commit {
            changes,
            events,
            topk,
            stats: delta.stats,
            timings: CommitTimings {
                validate,
                maintain,
                window,
                ..CommitTimings::default()
            },
        };
        let fanout_start = Instant::now();
        for (_, sink) in &mut self.sinks {
            for event in &commit.events {
                sink.on_event(event);
            }
            if let Some(update) = &commit.topk {
                sink.on_topk(update);
            }
            sink.on_commit(&commit, &self.db);
        }
        commit.timings.fanout = fanout_start.elapsed();
        commit.timings.total = commit_start.elapsed();

        let m = &self.metrics;
        m.commits.inc();
        m.events.add(commit.events.len() as u64);
        m.results.set(self.results.len() as i64);
        m.validate.record(commit.timings.validate);
        m.maintain.record(commit.timings.maintain);
        m.window.record(commit.timings.window);
        m.fanout.record(commit.timings.fanout);
        m.total.record(commit.timings.total);
        m.record_ops(&commit.stats);
        m.record_index(&self.db);
        self.total_stats.merge(&commit.stats);

        // Truncate-on-snapshot compaction once the log outgrows the
        // threshold. Best-effort, like the serve shutdown checkpoint:
        // the batch is already durable in the WAL and applied in memory,
        // so a failed snapshot must not report this committed batch as
        // failed (a retry would double-apply it). Compaction retries on
        // the next commit while the log stays over the threshold.
        if self
            .durability
            .as_ref()
            .is_some_and(|d| d.wal.bytes() >= d.threshold)
        {
            if let Err(e) = self.checkpoint() {
                self.metrics.checkpoint_errors.inc();
                // stderr directly: the session owns no event log, and a
                // swallowed compaction failure must surface somewhere.
                #[allow(clippy::print_stderr)]
                {
                    eprintln!("fd session: warning: auto-checkpoint failed (the commit itself is durable in the WAL): {e}");
                }
            }
        }

        Ok(commit)
    }

    /// The oracle-checkable invariant: does the materialized state equal
    /// the full disjunction of the current snapshot, recomputed from
    /// scratch? (On ranked sessions, additionally: does the maintained
    /// ranking equal a from-scratch rank + sort?)
    pub fn verify_snapshot(&self) -> bool {
        let fresh = FdQuery::over(&self.db)
            .with_config(self.cfg)
            .run()
            .expect("a bare configuration is always a valid batch query")
            .into_sets();
        if self.canonical_results() != canonicalize(fresh) {
            return false;
        }
        match &self.ranked {
            None => true,
            Some(r) => {
                let mut scratch: Vec<(TupleSet, f64)> = self
                    .results
                    .iter()
                    .map(|s| (s.clone(), r.f.rank(&self.db, s)))
                    .collect();
                scratch.sort_by(|a, b| canonical_rank_order(a.1, &a.0, b.1, &b.0));
                r.ranked == scratch
            }
        }
    }

    /// Makes this session durable in `dir`: writes an initial snapshot
    /// of the current state, opens a fresh write-ahead log, and from now
    /// on appends every committed batch (under `policy`) *before* the
    /// commit is acknowledged. Errors if the session is already durable.
    pub fn persist_to(
        &mut self,
        dir: impl AsRef<Path>,
        policy: FsyncPolicy,
    ) -> Result<(), FdError> {
        if self.durability.is_some() {
            return Err(FdError::Storage {
                reason: "session is already durable".into(),
            });
        }
        let store = Store::create(dir.as_ref()).map_err(storage_err)?;
        let mut opened = Wal::open(store.wal_path()).map_err(storage_err)?;
        // A fresh persist starts a fresh history: whatever log the
        // directory held describes some other session's tail.
        opened.wal.truncate().map_err(storage_err)?;
        self.durability = Some(Durability {
            store,
            wal: opened.wal,
            policy,
            threshold: DEFAULT_WAL_COMPACTION_BYTES,
            base_seq: 0,
        });
        self.checkpoint()?;
        Ok(())
    }

    /// Recovers a plain session from a data directory: loads the latest
    /// snapshot, replays the WAL tail through the regular commit path
    /// (one maintenance pass per record; no sinks are subscribed yet, so
    /// the net-effect events of replayed batches go nowhere), and keeps
    /// the session durable in the same directory. Default configuration
    /// and fsync policy; see
    /// [`open_with_config`](Self::open_with_config).
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, FdError> {
        Self::open_with_config(dir, FdConfig::default(), FsyncPolicy::default())
    }

    /// [`open`](Self::open) with explicit maintenance configuration and
    /// fsync policy for the recovered session's future commits.
    pub fn open_with_config(
        dir: impl AsRef<Path>,
        cfg: FdConfig,
        policy: FsyncPolicy,
    ) -> Result<Self, FdError> {
        type NoRanking<'q> = fn(&Database) -> Result<Box<dyn RankingFunction + Send + 'q>, FdError>;
        Self::open_inner(dir.as_ref(), cfg, policy, None::<(usize, NoRanking<'q>)>)
    }

    /// Recovers a **ranked** session from a data directory. The ranking
    /// function is built by `ranking` against the snapshot's database
    /// (before WAL replay — live-value rankings like
    /// [`AttrMax`](crate::serve::AttrMax) read the database at rank
    /// time, so replayed inserts rank correctly).
    pub fn open_ranked_with_config<F>(
        dir: impl AsRef<Path>,
        cfg: FdConfig,
        policy: FsyncPolicy,
        k: usize,
        ranking: F,
    ) -> Result<Self, FdError>
    where
        F: FnOnce(&Database) -> Result<Box<dyn RankingFunction + Send + 'q>, FdError>,
    {
        Self::open_inner(dir.as_ref(), cfg, policy, Some((k, ranking)))
    }

    fn open_inner<F>(
        dir: &Path,
        cfg: FdConfig,
        policy: FsyncPolicy,
        ranked: Option<(usize, F)>,
    ) -> Result<Self, FdError>
    where
        F: FnOnce(&Database) -> Result<Box<dyn RankingFunction + Send + 'q>, FdError>,
    {
        let store = Store::create(dir).map_err(storage_err)?;
        if !store.has_snapshot() {
            return Err(FdError::Storage {
                reason: format!("no snapshot in {}", dir.display()),
            });
        }
        let snap = store.read_snapshot().map_err(storage_err)?;
        // The snapshot is id-exact, so the materialized results rebuild
        // from their member ids — no full FD recomputation on recovery.
        let results: Vec<TupleSet> = snap
            .results
            .iter()
            .map(|ids| crate::jcc::rebuild(&snap.db, ids.clone()))
            .collect();
        let ranking = match ranked {
            Some((k, make)) => Some((make(&snap.db)?, k)),
            None => None,
        };
        let mut session = Self::assemble(snap.db, cfg, results, ranking, SessionMetrics::new());
        let opened = Wal::open(store.wal_path()).map_err(storage_err)?;
        // The log must reach back at least to the snapshot's fold-in
        // point — a first record further ahead means commits between the
        // two were lost, and replaying across the gap would corrupt.
        if let Some(first) = opened.records.first() {
            if first.seq > snap.seq + 1 {
                return Err(FdError::Storage {
                    reason: format!(
                        "wal starts at seq {} but the snapshot folds in only {} — records missing",
                        first.seq, snap.seq
                    ),
                });
            }
        }
        for record in opened.records {
            // Records at or below the snapshot's seq are already folded
            // in — the leftovers of a crash between the checkpoint's
            // snapshot rename and its WAL truncation. Replaying them
            // would double-apply inserts and re-delete dead tuples.
            if record.seq <= snap.seq {
                continue;
            }
            // Durability is attached only after replay, so these commits
            // do not re-append to the log they came from.
            session.commit(record.batch)?;
            session.metrics.recovery_replayed.inc();
        }
        session.durability = Some(Durability {
            store,
            wal: opened.wal,
            policy,
            threshold: DEFAULT_WAL_COMPACTION_BYTES,
            base_seq: snap.seq,
        });
        Ok(session)
    }

    /// Snapshots the current state and truncates the WAL (the records
    /// are now folded into the snapshot). Returns `false` as a no-op on
    /// a non-durable session. Runs automatically when the log exceeds
    /// the compaction threshold; call it explicitly for a graceful
    /// shutdown or an offline `fd snapshot`.
    ///
    /// The two steps are not atomic, but a crash between them is safe:
    /// the snapshot records the sequence number it folds in, and
    /// recovery skips every WAL record at or below it, so the stale log
    /// is ignored rather than double-applied.
    pub fn checkpoint(&mut self) -> Result<bool, FdError> {
        let seq = match &self.durability {
            Some(d) => d.base_seq + self.log.num_batches() as u64,
            None => return Ok(false),
        };
        let start = Instant::now();
        let ids: Vec<Vec<TupleId>> = self.results.iter().map(|s| s.tuples().to_vec()).collect();
        let d = self.durability.as_mut().expect("checked above");
        d.store
            .write_snapshot(&self.db, &ids, seq)
            .map_err(storage_err)?;
        d.wal.truncate().map_err(storage_err)?;
        self.metrics.snapshot.record(start.elapsed());
        Ok(true)
    }

    /// Is this session backed by a data directory?
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The data directory, when durable.
    pub fn data_dir(&self) -> Option<&Path> {
        self.durability.as_ref().map(|d| d.store.dir())
    }

    /// Current WAL size in bytes, when durable.
    pub fn wal_bytes(&self) -> Option<u64> {
        self.durability.as_ref().map(|d| d.wal.bytes())
    }

    /// Batches replayed from the WAL when this session was recovered.
    pub fn replayed_batches(&self) -> u64 {
        self.metrics.recovery_replayed.get()
    }

    /// Overrides the WAL size at which a commit triggers automatic
    /// truncate-on-snapshot compaction (default 1 MiB). No-op on a
    /// non-durable session.
    pub fn set_wal_compaction_threshold(&mut self, bytes: u64) {
        if let Some(d) = self.durability.as_mut() {
            d.threshold = bytes;
        }
    }

    fn add_set(&mut self, set: TupleSet) {
        let key: Box<[TupleId]> = set.tuples().into();
        debug_assert!(!self.index.contains_key(&key), "duplicate result {set}");
        self.index.insert(key, self.results.len());
        self.results.push(set);
    }

    fn remove_set(&mut self, set: &TupleSet) {
        let Some(pos) = self.index.remove(set.tuples()) else {
            debug_assert!(false, "retracting unknown result {set}");
            return;
        };
        self.results.swap_remove(pos);
        if pos < self.results.len() {
            let moved_key: Box<[TupleId]> = self.results[pos].tuples().into();
            self.index.insert(moved_key, pos);
        }
    }
}

/// The initial materialization every session constructor shares.
fn materialize(db: &Database, cfg: FdConfig, threads: Option<usize>) -> Vec<TupleSet> {
    let mut query = FdQuery::over(db).with_config(cfg);
    if let Some(t) = threads {
        query = query.init(crate::InitStrategy::Singletons).parallel(t);
    }
    query
        .run()
        .expect("a bare configuration is always a valid batch query")
        .into_sets()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ranking::{FMax, ImpScores};
    use fd_relational::{tourist_database, RelId};

    #[test]
    fn one_maintenance_pass_per_commit() {
        let mut session = FdSession::new(tourist_database());
        assert_eq!(session.maintenance_passes(), 0);

        // A batch of 4 mutations: exactly one pass.
        let mut batch = session.begin();
        batch
            .insert(RelId(0), vec!["Chile".into(), "arid".into()])
            .insert(RelId(0), vec!["Peru".into(), "arid".into()])
            .delete(TupleId(3))
            .delete(TupleId(7));
        let commit = session.commit(batch).unwrap();
        assert_eq!(commit.changes.len(), 4);
        assert_eq!(session.maintenance_passes(), 1);
        assert!(session.verify_snapshot());

        // Four singleton applies: four passes.
        let mut singles = FdSession::new(tourist_database());
        singles
            .apply(Delta::Insert {
                rel: RelId(0),
                values: vec!["Chile".into(), "arid".into()],
            })
            .unwrap();
        singles
            .apply(Delta::Insert {
                rel: RelId(0),
                values: vec!["Peru".into(), "arid".into()],
            })
            .unwrap();
        singles.apply(Delta::Delete { tuple: TupleId(3) }).unwrap();
        singles.apply(Delta::Delete { tuple: TupleId(7) }).unwrap();
        assert_eq!(singles.maintenance_passes(), 4);

        // Same final state either way.
        assert_eq!(session.canonical_results(), singles.canonical_results());

        // An empty commit is free.
        let empty = session.begin();
        session.commit(empty).unwrap();
        assert_eq!(session.maintenance_passes(), 1);
        assert_eq!(session.changelog().num_batches(), 1);
    }

    #[test]
    fn failed_commits_change_nothing() {
        let mut session = FdSession::new(tourist_database());
        let before = session.canonical_results();
        let mut batch = session.begin();
        batch
            .insert(RelId(0), vec!["Chile".into(), "arid".into()])
            .delete(TupleId(99)); // invalid: unknown tuple
        let err = session.commit(batch).unwrap_err();
        assert!(matches!(err, FdError::Mutation { .. }));
        assert_eq!(session.canonical_results(), before);
        assert_eq!(session.maintenance_passes(), 0);
        assert_eq!(session.db().num_tuples(), 10, "insert must roll back");
        assert!(session.changelog().is_empty());
    }

    #[test]
    fn net_effect_events_skip_intra_batch_churn() {
        // Insert a hotel that joins c1, and delete c1, in one batch: the
        // singleton replay would add a {c1, hotel, …} set and retract it
        // one step later; the batch commit must never surface it.
        let mut session = FdSession::new(tourist_database());
        let mut batch = session.begin();
        batch
            .insert(
                RelId(1),
                vec![
                    "Canada".into(),
                    "London".into(),
                    "Fairmont".into(),
                    5.into(),
                ],
            )
            .delete(TupleId(0));
        let commit = session.commit(batch).unwrap();
        let inserted = commit.inserted();
        assert_eq!(inserted.len(), 1);
        assert_eq!(commit.removed(), vec![TupleId(0)]);
        for event in &commit.events {
            if let FdEvent::Added(s) = event {
                assert!(
                    !s.contains(TupleId(0)),
                    "intra-batch churn surfaced: {s} references the deleted tuple"
                );
            }
        }
        assert!(session.verify_snapshot());
    }

    #[test]
    fn subscribers_receive_pushed_events() {
        let mut session = FdSession::new(tourist_database());
        let sink = VecSink::new();
        session.subscribe(sink.clone());
        let (channel, rx) = ChannelSink::new();
        session.subscribe(channel);

        let mut batch = session.begin();
        batch.insert(RelId(0), vec!["Chile".into(), "arid".into()]);
        let commit = session.commit(batch).unwrap();
        assert_eq!(sink.events(), commit.events);
        let pushed: Vec<FdEvent> = rx.try_iter().collect();
        assert_eq!(pushed, commit.events);

        // A dropped receiver must not break later commits.
        drop(rx);
        session.apply(Delta::Delete { tuple: TupleId(3) }).unwrap();
        assert!(sink.events().len() > commit.events.len());
    }

    #[test]
    fn ranked_sessions_maintain_the_window_per_commit() {
        let db = tourist_database();
        let stars = db.attr_id("Stars").unwrap();
        let imp = ImpScores::from_fn(&db, |t| match db.tuple_value(t, stars) {
            Some(fd_relational::Value::Int(i)) => *i as f64,
            _ => 0.0,
        });
        let mut session = FdSession::ranked(db, FMax::new(&imp), 2);
        assert!(session.is_ranked());
        assert_eq!(session.k(), Some(2));
        assert_eq!(session.window().unwrap().len(), 2);
        assert_eq!(session.window().unwrap()[0].1, 4.0); // the Plaza leads

        // Delete the leader and a second tuple in one commit.
        let mut batch = session.begin();
        batch.delete(TupleId(3)).delete(TupleId(7));
        let commit = session.commit(batch).unwrap();
        let update = commit.topk.expect("ranked session");
        assert!(!update.entered.is_empty() || !update.left.is_empty());
        assert_eq!(session.window().unwrap()[0].1, 3.0); // Ramada now
        assert!(session.verify_snapshot());
    }

    #[test]
    fn plain_sessions_report_no_topk() {
        let mut session = FdSession::new(tourist_database());
        let commit = session.apply(Delta::Delete { tuple: TupleId(3) }).unwrap();
        assert!(commit.topk.is_none());
        assert!(session.window().is_none());
        assert!(session.ranking().is_none());
        assert!(!session.is_ranked());
    }

    /// Records the call sequence a sink observes: one `event` marker per
    /// `on_event`, one `commit:N` marker per `on_commit` (N = the
    /// commit's event count, rendered against the delivered database to
    /// prove the post-commit snapshot arrives with it).
    struct OrderSink {
        calls: std::sync::Arc<std::sync::Mutex<Vec<String>>>,
    }

    impl EventSink for OrderSink {
        fn on_event(&mut self, _event: &FdEvent) {
            self.calls.lock().unwrap().push("event".into());
        }

        fn on_commit(&mut self, commit: &Commit, db: &Database) {
            // Rendering must not panic: every event's tuples resolve in
            // the post-commit database (tombstones keep row data).
            for event in &commit.events {
                let _ = event.label(db);
            }
            self.calls
                .lock()
                .unwrap()
                .push(format!("commit:{}", commit.events.len()));
        }
    }

    /// Every subscriber observes every commit exactly once, in commit
    /// order, with identical event sequences — and `on_commit` lands
    /// after the commit's per-event calls. The serve fan-out builds on
    /// exactly this contract.
    #[test]
    fn multiple_sinks_observe_identical_ordered_feeds() {
        let mut session = FdSession::new(tourist_database());
        let first = VecSink::new();
        session.subscribe(first.clone());
        let calls = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        session.subscribe(OrderSink {
            calls: calls.clone(),
        });
        let last = VecSink::new();
        session.subscribe(last.clone());

        session
            .apply(Delta::Insert {
                rel: RelId(0),
                values: vec!["Chile".into(), "arid".into()],
            })
            .unwrap();
        let mut batch = session.begin();
        batch
            .insert(
                RelId(1),
                vec![
                    "Canada".into(),
                    "London".into(),
                    "Fairmont".into(),
                    5.into(),
                ],
            )
            .delete(TupleId(4));
        session.commit(batch).unwrap();

        assert_eq!(first.events(), last.events());
        assert_eq!(first.events().len(), 3); // 1 + 2 net events
        assert!(
            matches!(first.events()[1], FdEvent::Retracted(_)),
            "retractions precede additions within a commit"
        );
        assert_eq!(
            calls.lock().unwrap().clone(),
            vec!["event", "commit:1", "event", "event", "commit:2"]
        );
    }

    /// Subscribe-then-abort delivers nothing: a dropped batch, an empty
    /// commit and a failed commit all skip the sinks entirely.
    #[test]
    fn aborted_empty_and_failed_commits_deliver_nothing() {
        let mut session = FdSession::new(tourist_database());
        let sink = VecSink::new();
        let id = session.subscribe(sink.clone());

        let mut batch = session.begin();
        batch.insert(RelId(0), vec!["Chile".into(), "arid".into()]);
        drop(batch); // abort: the queued mutation is discarded

        let empty = session.begin();
        session.commit(empty).unwrap();

        let mut bad = session.begin();
        bad.delete(TupleId(99)); // unknown tuple: the commit fails whole
        assert!(session.commit(bad).is_err());

        assert!(sink.events().is_empty(), "no commit realized, no events");
        assert!(session.unsubscribe(id));
        assert_eq!(session.num_subscribers(), 0);
    }

    /// Drops a shared receiver from *inside* the notification fan-out,
    /// so a later sink's sends in the same commit hit a hung-up channel.
    struct MidCommitDropper {
        rx: Option<std::sync::mpsc::Receiver<FdEvent>>,
    }

    impl EventSink for MidCommitDropper {
        fn on_event(&mut self, _event: &FdEvent) {
            self.rx.take(); // the consumer vanishes mid-commit
        }
    }

    /// A receiver hung up mid-commit must not take the commit down, and
    /// subscribers after the dead one keep their feeds intact.
    #[test]
    fn dropped_receiver_mid_commit_leaves_other_sinks_intact() {
        let mut session = FdSession::new(tourist_database());
        let (channel, rx) = ChannelSink::new();
        // The dropper is notified first; the ChannelSink's sends in the
        // same commit then hit a closed channel.
        session.subscribe(MidCommitDropper { rx: Some(rx) });
        session.subscribe(channel);
        let survivor = VecSink::new();
        session.subscribe(survivor.clone());

        let commit = session
            .apply(Delta::Insert {
                rel: RelId(0),
                values: vec!["Chile".into(), "arid".into()],
            })
            .unwrap();
        assert_eq!(survivor.events(), commit.events);
        assert!(session.verify_snapshot());

        // And the next commit still flows to the survivor.
        let commit = session.apply(Delta::Delete { tuple: TupleId(10) }).unwrap();
        assert_eq!(survivor.events().len(), 1 + commit.events.len());
    }

    /// Unsubscribing stops delivery immediately; the feed up to that
    /// point is untouched, and double-unsubscribe is not an error.
    #[test]
    fn unsubscribe_stops_delivery() {
        let mut session = FdSession::new(tourist_database());
        let sink = VecSink::new();
        let id = session.subscribe(sink.clone());
        let commit = session
            .apply(Delta::Insert {
                rel: RelId(0),
                values: vec!["Chile".into(), "arid".into()],
            })
            .unwrap();
        assert!(session.unsubscribe(id));
        session.apply(Delta::Delete { tuple: TupleId(10) }).unwrap();
        assert_eq!(sink.events(), commit.events, "nothing after unsubscribe");
        assert!(!session.unsubscribe(id), "double-unsubscribe is benign");
    }
}
