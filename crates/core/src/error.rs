//! The error type of the [`FdQuery`](crate::FdQuery) API.
//!
//! Every way a query can be mis-specified is a typed variant: invalid
//! combinations return `Err(FdError)` from [`FdQuery::run`](crate::FdQuery::run)
//! and friends instead of panicking or silently ignoring options (the
//! pre-builder CLI used to *reject* `--engine`/`--page-size` in
//! ranked/approx modes; the builder honors them, and only genuinely
//! contradictory requests error).

use fd_relational::RelationalError;
use std::fmt;

/// Why a full-disjunction query could not be executed.
#[derive(Debug, Clone, PartialEq)]
pub enum FdError {
    /// An option that only makes sense for ranked enumeration was set
    /// without a ranking function (e.g. `.top_k`/`.threshold` without
    /// `.ranked`).
    RankingRequired {
        /// The option that needs a ranking function.
        option: &'static str,
    },
    /// A mode that maintains a ranked window needs `.top_k(k)` (e.g. the
    /// live top-k engine).
    TopKRequired {
        /// The mode that needs the window size.
        context: &'static str,
    },
    /// Two requested options cannot be combined (e.g. a non-default
    /// `.init` strategy with `.ranked` — the reuse strategies seed run
    /// `i` from the results of runs `< i`, a sequence the single-seed
    /// and parallel executions do not have; or `.approx` with live
    /// maintenance).
    Incompatible {
        /// The first option.
        left: &'static str,
        /// The option it clashes with.
        right: &'static str,
    },
    /// The approximate-join threshold τ must be a finite number in
    /// `[0, 1]` (Definition 6.2 of the paper).
    InvalidTau {
        /// The offending value.
        tau: f64,
    },
    /// The ranking threshold of `.threshold(t)` must not be NaN.
    InvalidThreshold {
        /// The offending value.
        value: f64,
    },
    /// Block-based execution needs a positive page size.
    InvalidPageSize,
    /// A mutation inside a session commit (or a live `apply`) was
    /// rejected by the relational layer — unknown relation, arity
    /// mismatch, dead tuple, id-space overflow. The whole batch was
    /// rolled back; the session state is unchanged.
    Mutation {
        /// The relational layer's rejection.
        source: RelationalError,
    },
    /// The durability layer failed — a snapshot or write-ahead-log
    /// operation hit an I/O error or found a corrupt file. The reason is
    /// carried as text (`std::io::Error` is neither `Clone` nor
    /// `PartialEq`, which this type is).
    Storage {
        /// What went wrong, human-readable.
        reason: String,
    },
}

impl From<RelationalError> for FdError {
    fn from(source: RelationalError) -> Self {
        FdError::Mutation { source }
    }
}

impl fmt::Display for FdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FdError::RankingRequired { option } => {
                write!(
                    f,
                    "{option} requires a ranking function (call .ranked first)"
                )
            }
            FdError::TopKRequired { context } => {
                write!(f, "{context} requires a window size (call .top_k first)")
            }
            FdError::Incompatible { left, right } => {
                write!(f, "{left} cannot be combined with {right}")
            }
            FdError::InvalidTau { tau } => {
                write!(f, "approximate-join threshold must be in [0, 1], got {tau}")
            }
            FdError::InvalidThreshold { value } => {
                write!(f, "ranking threshold must not be NaN, got {value}")
            }
            FdError::InvalidPageSize => write!(f, "page size must be positive"),
            FdError::Mutation { source } => write!(f, "mutation rejected: {source}"),
            FdError::Storage { reason } => write!(f, "storage failure: {reason}"),
        }
    }
}

impl std::error::Error for FdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FdError::Mutation { source } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = FdError::RankingRequired { option: ".top_k" };
        assert!(e.to_string().contains(".top_k"));
        let e = FdError::Incompatible {
            left: ".init(ReuseResults/TrimExtend)",
            right: ".ranked",
        };
        assert!(e.to_string().contains("cannot be combined"));
        let e = FdError::InvalidTau { tau: 1.5 };
        assert!(e.to_string().contains("1.5"));
    }

    #[test]
    fn is_a_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<FdError>();
    }

    #[test]
    fn absorbs_relational_errors() {
        let rel = RelationalError::NoSuchTuple { id: 7 };
        let e: FdError = rel.clone().into();
        assert_eq!(e, FdError::Mutation { source: rel });
        assert!(e.to_string().contains("mutation rejected"));
        assert!(e.to_string().contains("t7"));
        use std::error::Error as _;
        assert!(e.source().is_some());
    }
}
