//! Initialization strategies for the `n` runs of a full-FD computation —
//! Section 7's "Minimizing repeated work".
//!
//! Computing `FD(R)` runs `INCREMENTALFD(R, i)` once per relation. With
//! the standard singleton initialization, a result with `j` member tuples
//! is recomputed `j` times. The paper proposes two refinements that seed
//! run `i` from the previously computed results, keep `Complete` global,
//! and restrict the scans of `GETNEXTRESULT` to relations after `Ri`:
//!
//! * [`InitStrategy::ReuseResults`] — seed `Incomplete` with the previous
//!   results containing a tuple of `Ri`, plus fresh singletons for the
//!   `Ri` tuples not covered by any previous result;
//! * [`InitStrategy::TrimExtend`] — additionally trim the reused sets to
//!   the relations `≥ i` (component of the `Ri` tuple) and pre-extend
//!   them over later relations, so the seeds lead directly to *new*
//!   answers.
//!
//! All strategies produce the same `FD(R)` (asserted by tests and the
//! equivalence suite); they differ in operation counts, which experiment
//! E11 measures.

use crate::incremental::{FdConfig, FdiIter};
use crate::jcc::{extend_to_maximal_from, rebuild};
use crate::lists::{CompleteStore, IncompleteQueue};
use crate::stats::Stats;
use crate::tupleset::TupleSet;
use fd_relational::fxhash::FxHashSet;
use fd_relational::{Database, RelId, TupleId};

/// How `Incomplete` is initialized for run `i` of a full-FD computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitStrategy {
    /// Fig. 1 lines 1–4: a singleton per tuple of `Ri`; every run is
    /// independent.
    #[default]
    Singletons,
    /// Section 7, option 2: reuse previous results as seeds; global
    /// `Complete`; scans restricted to relations after `Ri`.
    ReuseResults,
    /// Section 7, option 3: trim previous results to relations `≥ i`,
    /// pre-extend over later relations, deduplicate contained seeds.
    TrimExtend,
}

impl InitStrategy {
    /// Builds the `FDi` run for this strategy given all previously
    /// produced results.
    pub(crate) fn build_run<'db>(
        self,
        db: &'db Database,
        ri: RelId,
        cfg: FdConfig,
        produced: &[TupleSet],
    ) -> FdiIter<'db> {
        match self {
            InitStrategy::Singletons => FdiIter::with_config(db, ri, cfg),
            InitStrategy::ReuseResults => {
                let mut stats = Stats::new();
                let mut incomplete = IncompleteQueue::new(cfg.engine);
                let covered = seed_previous(db, ri, produced, &mut incomplete, &mut stats, false);
                seed_uncovered_singletons(db, ri, &covered, &mut incomplete, &mut stats);
                let complete = seed_complete(db, cfg, produced);
                FdiIter::from_parts(
                    db,
                    ri,
                    ri.index() + 1,
                    true,
                    incomplete,
                    complete,
                    cfg,
                    stats,
                )
            }
            InitStrategy::TrimExtend => {
                let mut stats = Stats::new();
                let mut incomplete = IncompleteQueue::new(cfg.engine);
                let covered = seed_previous(db, ri, produced, &mut incomplete, &mut stats, true);
                seed_uncovered_singletons(db, ri, &covered, &mut incomplete, &mut stats);
                let complete = seed_complete(db, cfg, produced);
                FdiIter::from_parts(
                    db,
                    ri,
                    ri.index() + 1,
                    true,
                    incomplete,
                    complete,
                    cfg,
                    stats,
                )
            }
        }
    }
}

/// Seeds `Incomplete` from previous results containing a tuple of `ri`.
/// With `trim`, each seed is cut down to the connected component of the
/// `ri` tuple among members of relations `≥ i` and pre-extended over
/// later relations; contained or duplicate seeds are dropped (the paper's
/// requirement to preserve the `O(f)` space bound and Remark 4.5).
/// Returns the set of `ri` tuples covered by some previous result.
fn seed_previous(
    db: &Database,
    ri: RelId,
    produced: &[TupleSet],
    incomplete: &mut IncompleteQueue,
    stats: &mut Stats,
    trim: bool,
) -> FxHashSet<TupleId> {
    let mut covered: FxHashSet<TupleId> = FxHashSet::default();
    let mut seeds: Vec<(TupleId, TupleSet)> = Vec::new();
    for prev in produced {
        let Some(root) = prev.tuple_from(db, ri) else {
            continue;
        };
        covered.insert(root);
        let seed = if trim {
            let members: Vec<TupleId> = prev
                .tuples()
                .iter()
                .copied()
                .filter(|&t| db.rel_of(t) >= ri)
                .collect();
            // Keep the component of the root among the trimmed members.
            let rels: Vec<RelId> = members.iter().map(|&t| db.rel_of(t)).collect();
            let comp = db.subset_component(&rels, ri);
            let kept: Vec<TupleId> = members
                .into_iter()
                .filter(|&t| comp.binary_search(&db.rel_of(t)).is_ok())
                .collect();
            let trimmed = rebuild(db, kept);
            extend_to_maximal_from(db, trimmed, ri.index() + 1, stats)
        } else {
            prev.clone()
        };
        seeds.push((root, seed));
    }
    if trim {
        // Drop seeds contained in (or equal to) another seed.
        let mut keep = vec![true; seeds.len()];
        for a in 0..seeds.len() {
            for b in 0..seeds.len() {
                if a != b
                    && keep[a]
                    && keep[b]
                    && seeds[a].1.is_subset_of(&seeds[b].1)
                    && (seeds[a].1.len() < seeds[b].1.len() || a > b)
                {
                    keep[a] = false;
                }
            }
        }
        let mut flags = keep.into_iter();
        seeds.retain(|_| flags.next().expect("flag per seed"));
    }
    for (root, seed) in seeds {
        incomplete.push(root, seed, stats);
    }
    covered
}

/// Seeds `{t}` for every tuple of `ri` not covered by previous results.
fn seed_uncovered_singletons(
    db: &Database,
    ri: RelId,
    covered: &FxHashSet<TupleId>,
    incomplete: &mut IncompleteQueue,
    stats: &mut Stats,
) {
    for t in db.tuples_of(ri) {
        if !covered.contains(&t) {
            incomplete.push(t, TupleSet::singleton(db, t), &mut *stats);
        }
    }
}

/// Builds the global `Complete` store holding all previous results,
/// indexed by every member tuple so any run's root lookups work.
fn seed_complete(db: &Database, cfg: FdConfig, produced: &[TupleSet]) -> CompleteStore {
    let _ = db;
    let mut complete = CompleteStore::new(cfg.engine);
    for prev in produced {
        complete.insert(prev.clone(), prev.tuples());
    }
    complete
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::{canonicalize, FdIter};

    fn full_disjunction_with(db: &Database, cfg: FdConfig) -> Vec<TupleSet> {
        FdIter::with_config(db, cfg).collect()
    }
    use fd_relational::tourist_database;

    fn strategies() -> [InitStrategy; 3] {
        [
            InitStrategy::Singletons,
            InitStrategy::ReuseResults,
            InitStrategy::TrimExtend,
        ]
    }

    #[test]
    fn all_strategies_compute_the_same_full_disjunction() {
        let db = tourist_database();
        let base = canonicalize(full_disjunction_with(
            &db,
            FdConfig {
                init: InitStrategy::Singletons,
                ..FdConfig::default()
            },
        ));
        assert_eq!(base.len(), 6);
        for strat in strategies() {
            let cfg = FdConfig {
                init: strat,
                ..FdConfig::default()
            };
            let got = canonicalize(full_disjunction_with(&db, cfg));
            assert_eq!(base, got, "strategy {strat:?}");
        }
    }

    #[test]
    fn reuse_strategies_do_less_candidate_scanning() {
        let db = tourist_database();
        let run = |strat| {
            let cfg = FdConfig {
                init: strat,
                ..FdConfig::default()
            };
            let mut it = crate::incremental::FdIter::with_config(&db, cfg);
            while it.next().is_some() {}
            it.stats_total()
        };
        let singles = run(InitStrategy::Singletons);
        let reuse = run(InitStrategy::ReuseResults);
        // Restricting scans to later relations must reduce candidate work.
        assert!(
            reuse.candidate_scans < singles.candidate_scans,
            "reuse {} vs singletons {}",
            reuse.candidate_scans,
            singles.candidate_scans
        );
    }

    #[test]
    fn strategies_agree_on_edge_case_databases() {
        // Disconnected + duplicate rows + nulls.
        use fd_relational::NULL;
        let mut b = fd_relational::DatabaseBuilder::new();
        b.relation("P", &["A", "B"])
            .row([1, 2])
            .row([1, 2])
            .row_values(vec![3.into(), NULL]);
        b.relation("Q", &["B", "C"]).row([2, 4]).row([9, 9]);
        b.relation("Z", &["D"]).row([0]);
        let db = b.build().unwrap();
        let base = canonicalize(full_disjunction_with(
            &db,
            FdConfig {
                init: InitStrategy::Singletons,
                ..FdConfig::default()
            },
        ));
        for strat in strategies() {
            let cfg = FdConfig {
                init: strat,
                ..FdConfig::default()
            };
            assert_eq!(
                base,
                canonicalize(full_disjunction_with(&db, cfg)),
                "{strat:?}"
            );
        }
    }
}
