//! # fd-core
//!
//! The algorithms of **Cohen & Sagiv, "An incremental algorithm for
//! computing ranked full disjunctions"** (PODS 2005 / JCSS 2007):
//!
//! * [`FdiIter`] / [`FdIter`] — `INCREMENTALFD` (Fig. 1–2): the full
//!   disjunction with incremental polynomial delay (Theorems 4.2–4.10);
//! * [`RankedFdIter`] — `PRIORITYINCREMENTALFD` (Fig. 3): answers in
//!   ranking order for monotonically c-determined ranking functions
//!   (Theorem 5.5) and the threshold variant (Remark 5.6);
//! * [`ApproxFdIter`] — `APPROXINCREMENTALFD` (Fig. 5–6): `(A, τ)`-
//!   approximate full disjunctions for acceptable, efficiently computable
//!   approximate join functions (Theorem 6.6);
//! * Section 7's optimizations: hash-indexed stores, block-based
//!   execution, alternative `Incomplete` initializations, plus a parallel
//!   full-FD driver.
//!
//! All of it is reachable through one typed entry point, [`FdQuery`]:
//! batch, streaming, ranked top-k/threshold, approximate,
//! ranked-approximate, parallel and delta execution share the builder,
//! honor the same [`FdConfig`] knobs, and report invalid combinations as
//! [`FdError`] values instead of panicking.
//!
//! ## Example
//!
//! ```
//! use fd_core::{FdQuery, FMax, ImpScores};
//! use fd_relational::tourist_database;
//!
//! let db = tourist_database();
//! // Table 2 of the paper: six maximal join-consistent connected sets.
//! assert_eq!(FdQuery::over(&db).run()?.len(), 6);
//! // Streaming: first answer after one GETNEXTRESULT call.
//! let first = FdQuery::over(&db).stream()?.next().unwrap()?;
//! assert_eq!(first.label(&db), "{c1, a1}");
//! // Ranked: the two best answers by tuple-id importance.
//! let imp = ImpScores::from_fn(&db, |t| t.0 as f64);
//! let top = FdQuery::over(&db).ranked(FMax::new(&imp)).top_k(2).run()?;
//! assert_eq!(top.len(), 2);
//! # Ok::<(), fd_core::FdError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![deny(rustdoc::broken_intra_doc_links)]

mod getnext;
mod incremental;
mod init;
mod lists;
mod padded;
mod parallel;
mod stats;
mod tupleset;

pub mod approx;
pub mod delta;
pub mod error;
pub mod jcc;
pub mod obs;
pub mod priority;
pub mod query;
pub mod ranked_approx;
pub mod ranking;
pub mod serve;
pub mod session;
pub mod sim;
pub mod store;

pub use approx::{AMin, AProd, ApproxAllIter, ApproxFdIter, ApproxJoin, ProbScores};
pub use delta::{BatchDelta, DeleteDelta, InsertDelta};
pub use error::FdError;
pub use incremental::{canonicalize, fdi, FdConfig, FdIter, FdiIter};
pub use init::InitStrategy;
pub use lists::{CompleteStore, IncompleteQueue, StoreEngine};
pub use obs::{Counter, EventLog, Gauge, Histogram, MetricsServer, QueryTimings, Registry, Span};
pub use padded::{format_results, padded_relation, padded_tuple, padded_tuple_over};
pub use priority::RankedFdIter;
pub use query::{BoxedApprox, BoxedRanking, FdQuery, FdResult, FdStream, QueryParts};
pub use ranked_approx::RankedApproxFdIter;
pub use ranking::{
    canonical_rank_order, FMax, FPairSum, FSum, FTriple, ImpScores, MonotoneCDetermined,
    RankingFunction,
};
pub use serve::{
    trigger_shutdown_on_signals, AttrMax, ServeError, ServeOptions, Server, SessionHandle,
    ShutdownHandle,
};
pub use session::{
    ChannelSink, Commit, CommitTimings, DeltaBatch, EventSink, FdEvent, FdSession, SinkId,
    TopKUpdate, VecSink,
};
pub use sim::{EditDistanceSim, ExactSim, Similarity, TableSim};
pub use stats::Stats;
pub use store::{FsyncPolicy, StoreError};
pub use tupleset::TupleSet;
