//! `INCREMENTALFD` (Fig. 1 of the paper) as polynomial-delay iterators.
//!
//! * [`FdiIter`] computes `FDi(R)` — the results containing a tuple of
//!   `Ri` — one tuple set per `next()` call (Theorem 4.10's incremental
//!   delivery).
//! * [`FdIter`] computes the entire `FD(R)` by running the algorithm for
//!   every `i ≤ n` and suppressing duplicates, exactly as Section 4
//!   prescribes (a set is emitted by the run of its *smallest* member
//!   relation). Section 7's alternative `Incomplete` initializations are
//!   selected through [`FdConfig`].

use crate::getnext::{get_next_result, ScanScope};
use crate::init::InitStrategy;
use crate::lists::{CompleteStore, IncompleteQueue, StoreEngine};
use crate::stats::Stats;
use crate::tupleset::TupleSet;
use fd_relational::fxhash::FxHashSet;
use fd_relational::storage::Pager;
use fd_relational::{Database, RelId, TupleId};

/// Execution knobs shared by all variants.
#[derive(Debug, Clone, Copy, Default)]
pub struct FdConfig {
    /// Store engine for `Complete`/`Incomplete` (Section 7 indexing
    /// ablation). Default: [`StoreEngine::Indexed`].
    pub engine: StoreEngine,
    /// `Some(page_size)` switches the scans of `GETNEXTRESULT` to
    /// block-based execution over a simulated pager (Section 7).
    pub page_size: Option<usize>,
    /// How `Incomplete` is initialized across the `n` runs of a full-FD
    /// computation (Section 7, "Minimizing repeated work").
    pub init: InitStrategy,
}

impl FdConfig {
    /// The paper-faithful configuration: linked-list scans, tuple-at-a-
    /// time execution, singleton initialization.
    pub fn paper_faithful() -> Self {
        FdConfig {
            engine: StoreEngine::Scan,
            page_size: None,
            init: InitStrategy::Singletons,
        }
    }
}

/// Iterator over `FDi(R)`: the tuple sets of the full disjunction that
/// contain a tuple from relation `Ri` (Fig. 1). Each `next()` performs one
/// `GETNEXTRESULT` call and therefore runs in incremental polynomial time.
pub struct FdiIter<'db> {
    db: &'db Database,
    ri: RelId,
    rel_min: usize,
    /// Section 7 reuse strategies: do not re-print a result contained in a
    /// previously printed one ("We must only print tuple sets that are not
    /// contained in previously printed tuple sets").
    suppress_contained: bool,
    incomplete: IncompleteQueue,
    complete: CompleteStore,
    pager: Option<Pager<'db>>,
    stats: Stats,
}

impl<'db> FdiIter<'db> {
    /// Standard initialization (Fig. 1 lines 1–4): a singleton `{t}` for
    /// every tuple `t ∈ Ri`.
    pub fn new(db: &'db Database, ri: RelId) -> Self {
        Self::with_config(db, ri, FdConfig::default())
    }

    /// Standard initialization with explicit configuration.
    pub fn with_config(db: &'db Database, ri: RelId, cfg: FdConfig) -> Self {
        let mut stats = Stats::new();
        let mut incomplete = IncompleteQueue::new(cfg.engine);
        for t in db.tuples_of(ri) {
            incomplete.push(t, TupleSet::singleton(db, t), &mut stats);
        }
        Self::from_parts(
            db,
            ri,
            0,
            false,
            incomplete,
            CompleteStore::new(cfg.engine),
            cfg,
            stats,
        )
    }

    /// Custom initialization (Remarks 4.3/4.5 allow it as long as every
    /// tuple of `Ri` is covered and no two initial sets lie in one result).
    /// Used by the Section 7 strategies; `rel_min` restricts the scans to
    /// relations `≥ rel_min` and `complete` may carry over prior results.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        db: &'db Database,
        ri: RelId,
        rel_min: usize,
        suppress_contained: bool,
        incomplete: IncompleteQueue,
        complete: CompleteStore,
        cfg: FdConfig,
        stats: Stats,
    ) -> Self {
        let pager = cfg.page_size.map(|ps| Pager::new(db, ps));
        FdiIter {
            db,
            ri,
            rel_min,
            suppress_contained,
            incomplete,
            complete,
            pager,
            stats,
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Pages fetched so far (block-based execution only).
    pub fn pages_read(&self) -> u64 {
        self.pager.as_ref().map_or(0, |p| p.stats().pages_read())
    }

    /// Labels of the current `Incomplete` and `Complete` lists, in list
    /// order — the columns of the paper's Table 3. Call between `next()`
    /// invocations to reproduce the trace.
    pub fn snapshot(&self) -> (Vec<String>, Vec<String>) {
        let inc = self.incomplete.iter().map(|s| s.label(self.db)).collect();
        let comp = self
            .complete
            .sets()
            .iter()
            .map(|s| s.label(self.db))
            .collect();
        (inc, comp)
    }

    /// Consumes the iterator, returning the final statistics.
    pub fn into_stats(self) -> Stats {
        self.stats
    }

    /// Internal step shared with [`FdIter`]: produce the next result and
    /// record it in `Complete`.
    fn step(&mut self) -> Option<TupleSet> {
        loop {
            let scope = ScanScope {
                db: self.db,
                ri: self.ri,
                rel_min: self.rel_min,
                seeds: &[],
                memo: None,
                pager: self.pager.as_ref(),
            };
            let (root, set) = get_next_result(
                &scope,
                &mut self.incomplete,
                &self.complete,
                &mut self.stats,
            )?;
            // Section 7 reuse strategies: with scans restricted to later
            // relations, a popped seed may be (contained in) an already
            // printed result — its candidate loop still ran, but it must
            // not be printed again.
            if self.suppress_contained
                && self.complete.contains_superset(&set, root, &mut self.stats)
            {
                continue;
            }
            self.complete.insert(set.clone(), set.tuples());
            return Some(set);
        }
    }
}

impl Iterator for FdiIter<'_> {
    type Item = TupleSet;

    fn next(&mut self) -> Option<TupleSet> {
        self.step()
    }
}

/// Computes `FDi(R)` eagerly.
///
/// ```
/// use fd_relational::{tourist_database, RelId};
///
/// let db = tourist_database();
/// // FD2: the results containing an Accommodations tuple — 3 of the 6.
/// assert_eq!(fd_core::fdi(&db, RelId(1)).len(), 3);
/// ```
pub fn fdi(db: &Database, ri: RelId) -> Vec<TupleSet> {
    FdiIter::new(db, ri).collect()
}

/// Iterator over the entire full disjunction `FD(R) = ⋃ᵢ FDi(R)`,
/// emitting every tuple set exactly once.
///
/// With the default [`InitStrategy::Singletons`], run `i` re-derives sets
/// already produced by earlier runs; following Section 4, a set is emitted
/// only by the run of its smallest member relation (the "contains a tuple
/// from `R1..R_{i-1}`" test). The Section 7 strategies instead reuse
/// previous results and restrict the scans; a global canonical filter
/// guarantees exactly-once emission for every strategy.
pub struct FdIter<'db> {
    db: &'db Database,
    cfg: FdConfig,
    current: Option<Box<FdiIter<'db>>>,
    next_rel: usize,
    /// All results produced so far (drives the reuse strategies).
    produced: Vec<TupleSet>,
    /// Canonical fingerprints of emitted sets (safety net making every
    /// strategy exactly-once even where Remark 4.5's precondition is
    /// heuristic).
    emitted: FxHashSet<Box<[TupleId]>>,
    stats: Stats,
}

impl<'db> FdIter<'db> {
    /// Default configuration.
    pub fn new(db: &'db Database) -> Self {
        Self::with_config(db, FdConfig::default())
    }

    /// Explicit configuration.
    pub fn with_config(db: &'db Database, cfg: FdConfig) -> Self {
        FdIter {
            db,
            cfg,
            current: None,
            next_rel: 0,
            produced: Vec::new(),
            emitted: FxHashSet::default(),
            stats: Stats::new(),
        }
    }

    /// Counters including the in-flight run.
    pub fn stats_total(&self) -> Stats {
        let mut s = self.stats;
        if let Some(cur) = &self.current {
            s.merge(cur.stats());
        }
        s
    }

    /// Folds the finished run's statistics in and starts the next run;
    /// false when all `n` runs are done.
    fn advance_run(&mut self) -> bool {
        if let Some(done) = self.current.take() {
            self.stats.merge(done.stats());
        }
        if self.next_rel >= self.db.num_relations() {
            return false;
        }
        let ri = RelId(self.next_rel as u16);
        self.next_rel += 1;
        let iter = self
            .cfg
            .init
            .build_run(self.db, ri, self.cfg, &self.produced);
        self.current = Some(Box::new(iter));
        true
    }
}

impl Iterator for FdIter<'_> {
    type Item = TupleSet;

    fn next(&mut self) -> Option<TupleSet> {
        loop {
            let Some(cur) = self.current.as_mut() else {
                if self.advance_run() {
                    continue;
                }
                return None;
            };
            match cur.step() {
                None => {
                    if !self.advance_run() {
                        return None;
                    }
                }
                Some(set) => {
                    // Exactly-once emission: with singleton initialization
                    // this coincides with the paper's "contains a tuple
                    // from R1..R_{i-1}" suppression (such a set was
                    // already produced by the earlier run); it also makes
                    // the Section 7 reuse strategies safe where Remark
                    // 4.5's precondition is heuristic.
                    if self.emitted.insert(set.tuples().into()) {
                        self.produced.push(set.clone());
                        return Some(set);
                    }
                }
            }
        }
    }
}

/// Sorts results canonically (by member tuple ids) — handy for comparing
/// algorithm outputs in tests and benchmarks.
pub fn canonicalize(mut sets: Vec<TupleSet>) -> Vec<TupleSet> {
    sets.sort();
    sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jcc::is_jcc;
    use fd_relational::tourist_database;

    fn full_disjunction(db: &Database) -> Vec<TupleSet> {
        FdIter::new(db).collect()
    }

    fn full_disjunction_with(db: &Database, cfg: FdConfig) -> Vec<TupleSet> {
        FdIter::with_config(db, cfg).collect()
    }

    const C1: TupleId = TupleId(0);
    const C2: TupleId = TupleId(1);
    const C3: TupleId = TupleId(2);
    const A1: TupleId = TupleId(3);
    const A2: TupleId = TupleId(4);
    const A3: TupleId = TupleId(5);
    const S1: TupleId = TupleId(6);
    const S2: TupleId = TupleId(7);
    const S3: TupleId = TupleId(8);
    const S4: TupleId = TupleId(9);

    /// Table 2 of the paper: the six tuple sets of the full disjunction.
    fn table_2() -> Vec<Vec<TupleId>> {
        vec![
            vec![C1, A1],
            vec![C1, A2, S1],
            vec![C1, S2],
            vec![C2, S3],
            vec![C2, S4],
            vec![C3, A3],
        ]
    }

    #[test]
    fn fdi_climates_produces_all_six_results_in_table_3_order() {
        let db = tourist_database();
        let results: Vec<Vec<TupleId>> = FdiIter::new(&db, RelId(0))
            .map(|s| s.tuples().to_vec())
            .collect();
        // Every result contains a Climates tuple, so FD1 = FD here, and
        // Example 4.1 fixes the emission order.
        assert_eq!(
            results,
            vec![
                vec![C1, A1],
                vec![C1, A2, S1],
                vec![C1, S2],
                vec![C2, S3],
                vec![C2, S4],
                vec![C3, A3],
            ]
        );
    }

    #[test]
    fn fdi_trace_matches_table_3() {
        let db = tourist_database();
        let mut it = FdiIter::with_config(&db, RelId(0), FdConfig::paper_faithful());
        // Initialization column.
        let (inc, comp) = it.snapshot();
        assert_eq!(inc, vec!["{c1}", "{c2}", "{c3}"]);
        assert!(comp.is_empty());

        let expected: Vec<(Vec<&str>, Vec<&str>)> = vec![
            (
                vec!["{c1, a2, s1}", "{c1, s2}", "{c2}", "{c3}"],
                vec!["{c1, a1}"],
            ),
            (
                vec!["{c1, s2}", "{c2}", "{c3}"],
                vec!["{c1, a1}", "{c1, a2, s1}"],
            ),
            (
                vec!["{c2}", "{c3}"],
                vec!["{c1, a1}", "{c1, a2, s1}", "{c1, s2}"],
            ),
            (
                vec!["{c2, s4}", "{c3}"],
                vec!["{c1, a1}", "{c1, a2, s1}", "{c1, s2}", "{c2, s3}"],
            ),
            (
                vec!["{c3}"],
                vec![
                    "{c1, a1}",
                    "{c1, a2, s1}",
                    "{c1, s2}",
                    "{c2, s3}",
                    "{c2, s4}",
                ],
            ),
            (
                vec![],
                vec![
                    "{c1, a1}",
                    "{c1, a2, s1}",
                    "{c1, s2}",
                    "{c2, s3}",
                    "{c2, s4}",
                    "{c3, a3}",
                ],
            ),
        ];
        for (iteration, (want_inc, want_comp)) in expected.iter().enumerate() {
            assert!(it.next().is_some(), "iteration {}", iteration + 1);
            let (inc, comp) = it.snapshot();
            assert_eq!(
                &inc,
                want_inc,
                "Incomplete after iteration {}",
                iteration + 1
            );
            assert_eq!(
                &comp,
                want_comp,
                "Complete after iteration {}",
                iteration + 1
            );
        }
        assert!(it.next().is_none());
    }

    #[test]
    fn full_disjunction_matches_table_2() {
        let db = tourist_database();
        let fd = canonicalize(full_disjunction(&db));
        let got: Vec<Vec<TupleId>> = fd.iter().map(|s| s.tuples().to_vec()).collect();
        assert_eq!(got, table_2());
    }

    #[test]
    fn fd2_and_fd3_only_emit_their_relation_rooted_sets() {
        let db = tourist_database();
        // FD2: sets containing an Accommodations tuple.
        let fd2: Vec<Vec<TupleId>> = fdi(&db, RelId(1))
            .into_iter()
            .map(|s| s.tuples().to_vec())
            .collect();
        assert_eq!(fd2.len(), 3);
        for s in &fd2 {
            assert!(s.iter().any(|t| (3..6).contains(&t.0)));
        }
        // FD3: sets containing a Sites tuple.
        let fd3 = fdi(&db, RelId(2));
        assert_eq!(fd3.len(), 4);
    }

    #[test]
    fn all_results_are_jcc_and_mutually_unsubsumed() {
        let db = tourist_database();
        let fd = full_disjunction(&db);
        for s in &fd {
            assert!(is_jcc(&db, s.tuples()));
        }
        for a in &fd {
            for b in &fd {
                if a.tuples() != b.tuples() {
                    assert!(!a.is_subset_of(b), "{a} ⊂ {b}");
                }
            }
        }
    }

    #[test]
    fn engines_and_block_modes_agree() {
        let db = tourist_database();
        let base = canonicalize(full_disjunction(&db));
        for engine in [StoreEngine::Scan, StoreEngine::Indexed] {
            for page_size in [None, Some(1), Some(3), Some(64)] {
                let cfg = FdConfig {
                    engine,
                    page_size,
                    init: InitStrategy::Singletons,
                };
                let got = canonicalize(full_disjunction_with(&db, cfg));
                assert_eq!(base, got, "engine {engine:?}, pages {page_size:?}");
            }
        }
    }

    #[test]
    fn single_relation_database_yields_singletons() {
        let mut b = fd_relational::DatabaseBuilder::new();
        b.relation("R", &["A"]).row([1]).row([2]).row([2]);
        let db = b.build().unwrap();
        let fd = full_disjunction(&db);
        // Three rows (one duplicated) ⇒ three singleton tuple sets: the
        // full disjunction is over tuples, not values.
        assert_eq!(fd.len(), 3);
        assert!(fd.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn disconnected_relations_never_combine() {
        let mut b = fd_relational::DatabaseBuilder::new();
        b.relation("P", &["A"]).row([1]);
        b.relation("Q", &["B"]).row([1]);
        let db = b.build().unwrap();
        let fd = full_disjunction(&db);
        assert_eq!(fd.len(), 2);
        assert!(fd.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn empty_relation_contributes_nothing() {
        let mut b = fd_relational::DatabaseBuilder::new();
        b.relation("R", &["A", "B"]).row([1, 2]);
        b.relation("S", &["B", "C"]);
        let db = b.build().unwrap();
        let fd = full_disjunction(&db);
        assert_eq!(fd.len(), 1);
        assert_eq!(fd[0].tuples(), &[TupleId(0)]);
    }

    #[test]
    fn all_null_join_column_isolates_tuples() {
        use fd_relational::NULL;
        let mut b = fd_relational::DatabaseBuilder::new();
        b.relation("R", &["A", "B"])
            .row_values(vec![1.into(), NULL]);
        b.relation("S", &["B", "C"])
            .row_values(vec![NULL, 3.into()]);
        let db = b.build().unwrap();
        let fd = full_disjunction(&db);
        // ⊥ never joins, not even with ⊥.
        assert_eq!(fd.len(), 2);
        assert!(fd.iter().all(|s| s.len() == 1));
    }

    #[test]
    fn stats_are_accumulated() {
        let db = tourist_database();
        let mut it = FdIter::new(&db);
        while it.next().is_some() {}
        let s = it.stats_total();
        assert!(s.results >= 6);
        assert!(s.jcc_checks > 0);
        assert!(s.candidate_scans > 0);
    }
}
