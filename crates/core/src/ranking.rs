//! Ranking functions over tuple sets (Section 5).
//!
//! Every tuple `t` carries an importance `imp(t)` ([`ImpScores`]). A
//! [`RankingFunction`] maps a tuple set to a score; the tractability
//! boundary of the top-k problem is the class of **monotonically
//! c-determined** functions (Definition in Section 5):
//!
//! * *c-determined*: for every tuple set `T` there is a connected
//!   `T′ ⊆ T` with `|T′| ≤ c` and `f(T′) = f(T)`;
//! * *monotone*: `T′ ⊆ T ⇒ f(T′) ≤ f(T)` for connected sets.
//!
//! [`FMax`] is monotonically 1-determined; [`FTriple`] reproduces the
//! paper's 3-determined example `max{imp(t1) + imp(t2)·imp(t3)}`;
//! [`FSum`] is *not* c-determined for any c — Proposition 5.1 shows its
//! top-1 problem is NP-hard, and the type system mirrors that boundary:
//! only [`MonotoneCDetermined`] implementors can drive
//! [`crate::RankedFdIter`].

use crate::tupleset::TupleSet;
use fd_relational::{Database, TupleId};

/// Importance assignment `imp(t)` for every tuple in the database.
///
/// Scores are indexed by tuple id over the database's full id space, so
/// the assignment stays valid under the tombstone-based mutation layer;
/// tuples inserted *after* construction default to importance `0.0`.
#[derive(Debug, Clone)]
pub struct ImpScores {
    scores: Vec<f64>,
    /// Importance of tuples inserted after construction.
    default: f64,
}

impl ImpScores {
    /// All tuples share the same importance — including tuples inserted
    /// later.
    pub fn uniform(db: &Database, value: f64) -> Self {
        ImpScores {
            scores: vec![value; db.tuple_id_bound() as usize],
            default: value,
        }
    }

    /// Computes `imp(t)` per tuple from a closure (called over the whole
    /// id space, including any tombstoned ids). Tuples inserted later
    /// default to importance `0.0`.
    pub fn from_fn(db: &Database, f: impl FnMut(TupleId) -> f64) -> Self {
        ImpScores {
            scores: (0..db.tuple_id_bound()).map(TupleId).map(f).collect(),
            default: 0.0,
        }
    }

    /// Builds from an explicit score vector (index = tuple id). Tuples
    /// inserted later default to importance `0.0`.
    ///
    /// # Panics
    /// Panics if the vector length does not match the tuple id space or
    /// any score is NaN.
    pub fn from_vec(db: &Database, scores: Vec<f64>) -> Self {
        assert_eq!(
            scores.len(),
            db.tuple_id_bound() as usize,
            "one score per tuple"
        );
        assert!(scores.iter().all(|s| !s.is_nan()), "scores must not be NaN");
        ImpScores {
            scores,
            default: 0.0,
        }
    }

    /// `imp(t)`; the constructor's documented default for tuples
    /// inserted after this assignment was built.
    #[inline]
    pub fn imp(&self, t: TupleId) -> f64 {
        self.scores.get(t.index()).copied().unwrap_or(self.default)
    }
}

/// The canonical ranked emission order shared by every ranked plan —
/// the sequential stream, the parallel k-way merge, and the live top-k
/// window: rank descending, member ids ascending within equal ranks.
/// All cross-plan "output-identical" guarantees are stated against this
/// one comparator.
pub fn canonical_rank_order(
    a_rank: f64,
    a_set: &TupleSet,
    b_rank: f64,
    b_set: &TupleSet,
) -> std::cmp::Ordering {
    b_rank.total_cmp(&a_rank).then_with(|| a_set.cmp(b_set))
}

/// A ranking function `f` over tuple sets. Implementations must be
/// computable in polynomial time in `|T|` (the paper's standing
/// assumption).
pub trait RankingFunction {
    /// `f(T)`.
    fn rank(&self, db: &Database, set: &TupleSet) -> f64;
}

/// Marker for monotonically c-determined ranking functions — the class
/// for which `PRIORITYINCREMENTALFD` returns answers in ranking order
/// (Theorem 5.5). Implementing this trait is a semantic promise; the
/// property tests exercise it on the provided implementations.
pub trait MonotoneCDetermined: RankingFunction {
    /// The determining constant `c`.
    fn c(&self) -> usize;
}

// The enumeration drivers *own* their ranking function, so borrowing and
// boxing callers both work: `RankedFdIter::new(&db, &f)` instantiates
// `F = &FMax`, the query builder's dynamic path `F = Box<dyn
// MonotoneCDetermined>`.

impl<F: RankingFunction + ?Sized> RankingFunction for &F {
    fn rank(&self, db: &Database, set: &TupleSet) -> f64 {
        (**self).rank(db, set)
    }
}

impl<F: MonotoneCDetermined + ?Sized> MonotoneCDetermined for &F {
    fn c(&self) -> usize {
        (**self).c()
    }
}

impl<F: RankingFunction + ?Sized> RankingFunction for Box<F> {
    fn rank(&self, db: &Database, set: &TupleSet) -> f64 {
        (**self).rank(db, set)
    }
}

impl<F: MonotoneCDetermined + ?Sized> MonotoneCDetermined for Box<F> {
    fn c(&self) -> usize {
        (**self).c()
    }
}

/// `f_max(T) = max{imp(t) | t ∈ T}` — monotonically 1-determined.
#[derive(Debug, Clone)]
pub struct FMax<'a> {
    imp: &'a ImpScores,
}

impl<'a> FMax<'a> {
    /// Builds over an importance assignment.
    pub fn new(imp: &'a ImpScores) -> Self {
        FMax { imp }
    }
}

impl RankingFunction for FMax<'_> {
    fn rank(&self, _db: &Database, set: &TupleSet) -> f64 {
        set.tuples()
            .iter()
            .map(|&t| self.imp.imp(t))
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

impl MonotoneCDetermined for FMax<'_> {
    fn c(&self) -> usize {
        1
    }
}

/// `f_sum(T) = Σ imp(t)` — monotone (for non-negative importances) but
/// **not** c-determined; Proposition 5.1 proves its top-1 problem NP-hard.
/// Deliberately not [`MonotoneCDetermined`], so it cannot drive the
/// ranked iterator; the baseline crate's exhaustive search uses it.
#[derive(Debug, Clone)]
pub struct FSum<'a> {
    imp: &'a ImpScores,
}

impl<'a> FSum<'a> {
    /// Builds over an importance assignment.
    pub fn new(imp: &'a ImpScores) -> Self {
        FSum { imp }
    }
}

impl RankingFunction for FSum<'_> {
    fn rank(&self, _db: &Database, set: &TupleSet) -> f64 {
        set.tuples().iter().map(|&t| self.imp.imp(t)).sum()
    }
}

/// The paper's 3-determined example:
/// `f(T) = max{imp(t1) + imp(t2)·imp(t3) | t1,t2,t3 ∈ T, {t1,t2,t3}
/// connected}`. The maximizing tuples need not be distinct, so every
/// non-empty set has a score; with non-negative importances it is
/// monotone, hence monotonically 3-determined.
#[derive(Debug, Clone)]
pub struct FTriple<'a> {
    imp: &'a ImpScores,
}

impl<'a> FTriple<'a> {
    /// Builds over an importance assignment.
    pub fn new(imp: &'a ImpScores) -> Self {
        FTriple { imp }
    }
}

impl RankingFunction for FTriple<'_> {
    fn rank(&self, db: &Database, set: &TupleSet) -> f64 {
        let ts = set.tuples();
        let mut best = f64::NEG_INFINITY;
        for &t1 in ts {
            for &t2 in ts {
                for &t3 in ts {
                    if connected_triple(db, t1, t2, t3) {
                        let v = self.imp.imp(t1) + self.imp.imp(t2) * self.imp.imp(t3);
                        best = best.max(v);
                    }
                }
            }
        }
        best
    }
}

impl MonotoneCDetermined for FTriple<'_> {
    fn c(&self) -> usize {
        3
    }
}

/// Is the (de-duplicated) set `{t1, t2, t3}` connected as a tuple set —
/// do the relations of its members form a connected subgraph?
fn connected_triple(db: &Database, t1: TupleId, t2: TupleId, t3: TupleId) -> bool {
    let mut rels = vec![db.rel_of(t1), db.rel_of(t2), db.rel_of(t3)];
    rels.sort_unstable();
    rels.dedup();
    db.subset_connected(&rels)
}

/// `f(T) = max{imp(t1) + imp(t2) | t1,t2 ∈ T, {t1,t2} connected}` — a
/// monotonically 2-determined function, completing the c = 1/2/3 example
/// ladder. The maximizing pair may repeat a tuple (`t1 = t2`), so
/// singletons score `2·imp(t)`.
#[derive(Debug, Clone)]
pub struct FPairSum<'a> {
    imp: &'a ImpScores,
}

impl<'a> FPairSum<'a> {
    /// Builds over an importance assignment.
    pub fn new(imp: &'a ImpScores) -> Self {
        FPairSum { imp }
    }
}

impl RankingFunction for FPairSum<'_> {
    fn rank(&self, db: &Database, set: &TupleSet) -> f64 {
        let ts = set.tuples();
        let mut best = f64::NEG_INFINITY;
        for &t1 in ts {
            best = best.max(2.0 * self.imp.imp(t1));
            for &t2 in ts {
                if t1 < t2 && db.rels_connected(db.rel_of(t1), db.rel_of(t2)) {
                    best = best.max(self.imp.imp(t1) + self.imp.imp(t2));
                }
            }
        }
        best
    }
}

impl MonotoneCDetermined for FPairSum<'_> {
    fn c(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jcc::rebuild;
    use fd_relational::tourist_database;

    fn imp_by_id(db: &Database) -> ImpScores {
        ImpScores::from_fn(db, |t| t.0 as f64)
    }

    #[test]
    fn fmax_is_the_maximum_importance() {
        let db = tourist_database();
        let imp = imp_by_id(&db);
        let f = FMax::new(&imp);
        let set = rebuild(&db, vec![TupleId(0), TupleId(4), TupleId(6)]);
        assert_eq!(f.rank(&db, &set), 6.0);
        assert_eq!(f.c(), 1);
    }

    #[test]
    fn fsum_adds_importances() {
        let db = tourist_database();
        let imp = imp_by_id(&db);
        let f = FSum::new(&imp);
        let set = rebuild(&db, vec![TupleId(0), TupleId(4), TupleId(6)]);
        assert_eq!(f.rank(&db, &set), 10.0);
    }

    #[test]
    fn ftriple_on_singleton_uses_repeats() {
        let db = tourist_database();
        let imp = ImpScores::uniform(&db, 2.0);
        let f = FTriple::new(&imp);
        let set = TupleSet::singleton(&db, TupleId(0));
        // t1 = t2 = t3: 2 + 2*2 = 6.
        assert_eq!(f.rank(&db, &set), 6.0);
        assert_eq!(f.c(), 3);
    }

    #[test]
    fn ftriple_is_monotone_on_nonnegative_scores() {
        let db = tourist_database();
        let imp = imp_by_id(&db);
        let f = FTriple::new(&imp);
        let small = rebuild(&db, vec![TupleId(0), TupleId(4)]);
        let large = rebuild(&db, vec![TupleId(0), TupleId(4), TupleId(6)]);
        assert!(f.rank(&db, &small) <= f.rank(&db, &large));
    }

    #[test]
    fn monotonicity_of_fmax_on_chains() {
        let db = tourist_database();
        let imp = imp_by_id(&db);
        let f = FMax::new(&imp);
        let small = TupleSet::singleton(&db, TupleId(0));
        let large = rebuild(&db, vec![TupleId(0), TupleId(3)]);
        assert!(f.rank(&db, &small) <= f.rank(&db, &large));
    }

    #[test]
    #[should_panic(expected = "one score per tuple")]
    fn from_vec_validates_length() {
        let db = tourist_database();
        let _ = ImpScores::from_vec(&db, vec![1.0; 3]);
    }

    #[test]
    fn fpairsum_prefers_the_best_connected_pair() {
        let db = tourist_database();
        let imp = imp_by_id(&db);
        let f = FPairSum::new(&imp);
        // {c1, a2, s1}: pairs (c1,a2)=4, (c1,s1)=6, (a2,s1)=10, repeats
        // 2·6=12 ⇒ max is 12 (s1 twice).
        let set = rebuild(&db, vec![TupleId(0), TupleId(4), TupleId(6)]);
        assert_eq!(f.rank(&db, &set), 12.0);
        assert_eq!(f.c(), 2);
        // Singleton uses the repeat rule.
        let single = TupleSet::singleton(&db, TupleId(4));
        assert_eq!(f.rank(&db, &single), 8.0);
    }

    #[test]
    fn fpairsum_is_monotone_on_nonnegative_scores() {
        let db = tourist_database();
        let imp = imp_by_id(&db);
        let f = FPairSum::new(&imp);
        let small = rebuild(&db, vec![TupleId(0), TupleId(4)]);
        let large = rebuild(&db, vec![TupleId(0), TupleId(4), TupleId(6)]);
        assert!(f.rank(&db, &small) <= f.rank(&db, &large));
    }
}
