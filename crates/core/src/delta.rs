//! Delta maintenance of a materialized full disjunction under tuple
//! inserts and deletes.
//!
//! The paper's `FDi(R)` primitive (Theorem 4.10) computes exactly the
//! tuple sets of the full disjunction containing a tuple of `Ri` — so the
//! delta of inserting a tuple `t` is an `FDi`-style run seeded at the
//! singleton `{t}`:
//!
//! * [`delta_insert`] — after `t` enters the database, the new `FD`
//!   differs from the old one by (a) the maximal join-consistent
//!   connected sets *containing `t`* (all new — no pre-existing set can
//!   contain a tuple that did not exist) and (b) the old results those
//!   new sets strictly subsume. The sets of (a) are found by running
//!   `GETNEXTRESULT` with `Incomplete = [{t}]` and the line-10 root
//!   filter tightened to "contains `t`", which is `INCREMENTALFD` over
//!   the database in which `t`'s relation is replaced by `{t}`.
//! * [`delta_delete`] — after `t` leaves, every result containing `t`
//!   dies, and a previously-subsumed set can resurface. A newly maximal
//!   set `M` must be connected, contain no tuple of a surviving result
//!   superset, and satisfy `M ⊆ S \ {t}` for some dropped result `S`
//!   (any other old superset of `M` would still be a superset); being
//!   maximal and connected inside `S \ {t}`, it is a *connected
//!   component* of `S \ {t}`. The survivors are therefore re-derived by
//!   splitting each dropped set and keeping the components that are
//!   non-extendable and not already present.
//!
//! Both functions are pure: database + previous results in, delta out.
//! The session layer (`crate::session`) builds the stateful subscription engine on top.

use crate::getnext::{get_next_result, ScanScope};
use crate::incremental::FdConfig;
use crate::jcc::{extend_to_maximal, rebuild};
use crate::lists::{CompleteStore, IncompleteQueue};
use crate::stats::Stats;
use crate::tupleset::TupleSet;
use fd_relational::fxhash::FxHashSet;
use fd_relational::storage::Pager;
use fd_relational::{Database, TupleId};

/// The effect of one tuple insertion on the full disjunction.
#[derive(Debug, Clone, Default)]
pub struct InsertDelta {
    /// New maximal sets — each contains the inserted tuple; no duplicates,
    /// no set subsumed by another.
    pub added: Vec<TupleSet>,
    /// Previous results that became non-maximal (strict subsets of some
    /// `added` set) and must be retracted.
    pub subsumed: Vec<TupleSet>,
    /// Work counters of the maintenance run.
    pub stats: Stats,
}

/// The effect of one tuple deletion on the full disjunction.
#[derive(Debug, Clone, Default)]
pub struct DeleteDelta {
    /// Previous results containing the deleted tuple; they must be
    /// retracted.
    pub dropped: Vec<TupleSet>,
    /// Sets that become maximal once the `dropped` results are gone —
    /// connected components of `S \ {t}` that cannot be extended and are
    /// not already results.
    pub restored: Vec<TupleSet>,
    /// Work counters of the maintenance run.
    pub stats: Stats,
}

/// Computes the full-disjunction delta of inserting tuple `t`.
///
/// `db` must already contain `t` (live); `previous` is the materialized
/// full disjunction of the database *without* `t`. Runs in incremental
/// polynomial time per emitted set (Theorem 4.10 applied to the instance
/// whose `Ri` is `{t}`), independent of how many runs a full
/// recomputation would need.
///
/// Builder equivalent (preferred — no bare `FdConfig` plumbing):
/// `FdQuery::over(&db).delta_insert(t, previous)` — see
/// [`crate::FdQuery::delta_insert`].
pub fn delta_insert(
    db: &Database,
    t: TupleId,
    previous: &[TupleSet],
    cfg: FdConfig,
) -> InsertDelta {
    delta_insert_many(db, &[t], previous, cfg)
}

/// Computes the full-disjunction delta of inserting `seeds` — the
/// multi-seed generalization of [`delta_insert`], and the insert half of
/// a batched commit's single maintenance pass.
///
/// `db` must already contain every seed (live); `previous` is the
/// materialized full disjunction of the database *without* them. All `k`
/// seeds drive **one** `FDi` run: `Incomplete` starts from the `k`
/// singletons, the line-10 root filter accepts any seed, and emitted
/// sets register in `Complete` under every contained seed — so a maximal
/// set joining several fresh tuples is discovered (and its derivations
/// suppressed) once, not once per seed.
pub fn delta_insert_many(
    db: &Database,
    seeds: &[TupleId],
    previous: &[TupleSet],
    cfg: FdConfig,
) -> InsertDelta {
    debug_assert!(
        seeds.iter().all(|&t| db.is_live(t)),
        "insert delta requires live seed tuples"
    );
    let mut stats = Stats::new();
    if seeds.is_empty() {
        return InsertDelta::default();
    }
    let mut incomplete = IncompleteQueue::new(cfg.engine);
    for &t in seeds {
        incomplete.push(t, TupleSet::singleton(db, t), &mut stats);
    }
    let mut complete = CompleteStore::new(cfg.engine);
    let pager = cfg.page_size.map(|ps| Pager::new(db, ps));
    let memo = std::cell::RefCell::new(FxHashSet::default());
    let scope = ScanScope {
        db,
        ri: db.rel_of(seeds[0]),
        rel_min: 0,
        seeds,
        memo: Some(&memo),
        pager: pager.as_ref(),
    };

    let mut added: Vec<TupleSet> = Vec::new();
    let mut emitted: FxHashSet<Box<[TupleId]>> = FxHashSet::default();
    while let Some((_, set)) = get_next_result(&scope, &mut incomplete, &complete, &mut stats) {
        // The Complete store already suppresses subsets of printed sets;
        // the canonical filter additionally drops exact re-derivations
        // (two seeds contained in one maximal set each derive it once).
        if emitted.insert(set.tuples().into()) {
            let roots: Vec<TupleId> = seeds.iter().copied().filter(|&s| set.contains(s)).collect();
            complete.insert(set.clone(), &roots);
            added.push(set);
        }
    }

    let subsumed = previous
        .iter()
        .filter(|prev| {
            // A subsumed old set is a strict subset of a new one (never
            // equal: it cannot contain a fresh seed tuple).
            added.iter().any(|new| prev.is_subset_of(new))
        })
        .cloned()
        .collect();
    InsertDelta {
        added,
        subsumed,
        stats,
    }
}

/// Computes the full-disjunction delta of deleting tuple `t`.
///
/// `db` must already have `t` removed (tombstoned); `previous` is the
/// materialized full disjunction of the database *with* `t`. The cost is
/// proportional to the dropped results and one maximality probe per
/// resurfacing candidate — not to the size of the database's full
/// disjunction.
///
/// Builder equivalent (preferred — no bare `FdConfig` plumbing):
/// `FdQuery::over(&db).delta_delete(t, previous)` — see
/// [`crate::FdQuery::delta_delete`].
pub fn delta_delete(
    db: &Database,
    t: TupleId,
    previous: &[TupleSet],
    cfg: FdConfig,
) -> DeleteDelta {
    delta_delete_many(db, &[t], previous, cfg)
}

/// Computes the full-disjunction delta of deleting all of `removed` —
/// the grouped generalization of [`delta_delete`], and the delete half
/// of a batched commit's single maintenance pass.
///
/// `db` must already have every removed tuple tombstoned; `previous` is
/// the materialized full disjunction of the database *with* them. The
/// dropped results (those touching **any** removed tuple) are collected
/// in one scan, and the remnant components — each dropped set minus the
/// whole removed group — are re-derived once, not once per deletion: a
/// newly maximal set `M` has every old maximal superset dropped, so
/// `M ⊆ S \ removed` for some dropped `S`, and being maximal and
/// connected inside it, `M` is a connected component of `S \ removed`
/// (the Theorem 4.8 argument applied to the group).
pub fn delta_delete_many(
    db: &Database,
    removed: &[TupleId],
    previous: &[TupleSet],
    cfg: FdConfig,
) -> DeleteDelta {
    debug_assert!(
        removed.iter().all(|&t| !db.is_live(t)),
        "delete delta runs after the tombstones"
    );
    let _ = cfg; // store engine choice does not affect this path (yet)
    let mut stats = Stats::new();
    if removed.is_empty() {
        return DeleteDelta::default();
    }
    let mut dropped: Vec<TupleSet> = Vec::new();
    let mut survivors: FxHashSet<&[TupleId]> = FxHashSet::default();
    for prev in previous {
        if removed.iter().any(|&t| prev.contains(t)) {
            dropped.push(prev.clone());
        } else {
            survivors.insert(prev.tuples());
        }
    }

    let mut restored: Vec<TupleSet> = Vec::new();
    let mut seen: FxHashSet<Box<[TupleId]>> = FxHashSet::default();
    for set in &dropped {
        let remnant: Vec<TupleId> = set
            .tuples()
            .iter()
            .copied()
            .filter(|u| !removed.contains(u))
            .collect();
        for component in connected_components(db, &remnant) {
            if !seen.insert(component.clone().into_boxed_slice()) {
                continue;
            }
            if survivors.contains(component.as_slice()) {
                continue;
            }
            let candidate = rebuild(db, component);
            // Maximality probe: a candidate that grows was (and remains)
            // subsumed by an existing result — extend_to_maximal reaches
            // a maximal superset, which either survives in `previous` or
            // is itself a component of another dropped set (or, inside a
            // batched commit, contains a freshly inserted tuple and is
            // found by the batch's multi-seed insert run).
            let extended = extend_to_maximal(db, candidate.clone(), &mut stats);
            if extended.tuples() == candidate.tuples() {
                restored.push(candidate);
            }
        }
    }
    DeleteDelta {
        dropped,
        restored,
        stats,
    }
}

/// The net effect of one batched commit (k mutations, one maintenance
/// pass) on the full disjunction.
#[derive(Debug, Clone, Default)]
pub struct BatchDelta {
    /// Previous results that must be retracted: sets touching a removed
    /// tuple, plus sets subsumed by a new maximal set.
    pub retracted: Vec<TupleSet>,
    /// Sets entering the full disjunction: re-derived remnant components
    /// of the retracted sets, plus the maximal sets containing at least
    /// one inserted tuple.
    pub added: Vec<TupleSet>,
    /// Work counters of the (single) maintenance pass.
    pub stats: Stats,
}

/// Computes the full-disjunction delta of one batched commit: all of
/// `inserted` entered the database and all of `removed` left it, in one
/// transaction. `db` must already reflect the whole batch (inserted
/// tuples live, removed tuples tombstoned); `previous` is the
/// materialized full disjunction from *before* the batch.
///
/// This is **one** maintenance pass, not `k`:
///
/// * the deletes are processed as a group ([`delta_delete_many`]) —
///   results touching any removed tuple drop in one scan, remnant
///   components re-derive once;
/// * the inserts are seeded together ([`delta_insert_many`]) — one
///   multi-seed `FDi` run discovers every maximal set containing a new
///   tuple, so overlapping inserts combine without intermediate states;
/// * the returned events are the *net* effect: a set that a singleton
///   replay would have added and then retracted within the batch (say,
///   an insert joining a tuple the same batch deletes) never surfaces,
///   because the maintenance runs against the final database only.
///
/// The remnant-component probes run against the final database, so a
/// component extendable only through an inserted tuple is correctly left
/// to the insert run (which emits the extended maximal set instead).
pub fn delta_batch(
    db: &Database,
    inserted: &[TupleId],
    removed: &[TupleId],
    previous: &[TupleSet],
    cfg: FdConfig,
) -> BatchDelta {
    let del = delta_delete_many(db, removed, previous, cfg);
    let mut stats = del.stats;

    let ins = delta_insert_many(db, inserted, &[], cfg);
    stats.merge(&ins.stats);

    // Only results that survived the delete group can be subsumed by a
    // new maximal set (dropped sets are already being retracted,
    // restored components are maximal in the final database by
    // construction). Computed here by reference — the common one-insert
    // commit must not clone the whole materialized result just to run
    // the subsumption filter.
    let subsumed = previous
        .iter()
        .filter(|prev| !removed.iter().any(|&t| prev.contains(t)))
        .filter(|prev| ins.added.iter().any(|new| prev.is_subset_of(new)))
        .cloned();

    let mut retracted = del.dropped;
    retracted.extend(subsumed);
    let mut added = del.restored;
    added.extend(ins.added);
    BatchDelta {
        retracted,
        added,
        stats,
    }
}

/// Splits a join-consistent member list into its connected components
/// (connectivity over the members' relations, as in Theorem 4.8's
/// auxiliary graph). Members arrive sorted; components come out sorted.
fn connected_components(db: &Database, members: &[TupleId]) -> Vec<Vec<TupleId>> {
    let n = members.len();
    let mut assigned = vec![false; n];
    let mut out = Vec::new();
    for start in 0..n {
        if assigned[start] {
            continue;
        }
        let mut component = vec![start];
        assigned[start] = true;
        let mut frontier = vec![start];
        while let Some(i) = frontier.pop() {
            for j in 0..n {
                if !assigned[j] && db.rels_connected(db.rel_of(members[i]), db.rel_of(members[j])) {
                    assigned[j] = true;
                    component.push(j);
                    frontier.push(j);
                }
            }
        }
        component.sort_unstable();
        out.push(component.into_iter().map(|i| members[i]).collect());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::{canonicalize, FdIter};
    use crate::query::FdQuery;
    use fd_relational::{tourist_database, RelId, Value};

    fn full_disjunction(db: &Database) -> Vec<TupleSet> {
        FdIter::new(db).collect()
    }

    /// Applies a delta to a materialized result list the way a live session
    /// does, so the invariant `apply(delta(FD_old)) == FD_new` is checked
    /// against a from-scratch recomputation.
    fn apply_insert(previous: &[TupleSet], d: &InsertDelta) -> Vec<TupleSet> {
        let mut out: Vec<TupleSet> = previous
            .iter()
            .filter(|s| !d.subsumed.contains(s))
            .cloned()
            .collect();
        out.extend(d.added.iter().cloned());
        canonicalize(out)
    }

    fn apply_delete(previous: &[TupleSet], d: &DeleteDelta) -> Vec<TupleSet> {
        let mut out: Vec<TupleSet> = previous
            .iter()
            .filter(|s| !d.dropped.contains(s))
            .cloned()
            .collect();
        out.extend(d.restored.iter().cloned());
        canonicalize(out)
    }

    #[test]
    fn insert_delta_matches_recomputation_on_tourist() {
        let mut db = tourist_database();
        let before = full_disjunction(&db);
        // A new Accommodations row joining c1 via Country and s1 via City.
        let t = db
            .insert_tuple(
                RelId(1),
                vec![
                    "Canada".into(),
                    "London".into(),
                    "Fairmont".into(),
                    Value::Int(5),
                ],
            )
            .unwrap();
        let d = FdQuery::over(&db).delta_insert(t, &before).unwrap();
        assert!(!d.added.is_empty());
        assert!(d.added.iter().all(|s| s.contains(t)));
        assert_eq!(
            apply_insert(&before, &d),
            canonicalize(full_disjunction(&db))
        );
    }

    #[test]
    fn insert_delta_subsumes_swallowed_results() {
        // P(A), Q(A, B): inserting the matching Q row swallows {p1}.
        let mut b = fd_relational::DatabaseBuilder::new();
        b.relation("P", &["A"]).row([1]);
        b.relation("Q", &["A", "B"]);
        let mut db = b.build().unwrap();
        let before = full_disjunction(&db);
        assert_eq!(before.len(), 1); // {p1}
        let t = db.insert_tuple(RelId(1), vec![1.into(), 2.into()]).unwrap();
        let d = FdQuery::over(&db).delta_insert(t, &before).unwrap();
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.added[0].len(), 2);
        assert_eq!(d.subsumed.len(), 1);
        assert_eq!(
            apply_insert(&before, &d),
            canonicalize(full_disjunction(&db))
        );
    }

    #[test]
    fn delete_delta_restores_fragments() {
        let mut db = tourist_database();
        let before = full_disjunction(&db);
        // Delete a2 (the London Ramada): {c1, a2, s1} dies; {c1, s1} must
        // resurface (a1 conflicts with s1 on City, so it is maximal).
        db.remove_tuple(TupleId(4)).unwrap();
        let d = FdQuery::over(&db)
            .delta_delete(TupleId(4), &before)
            .unwrap();
        assert_eq!(d.dropped.len(), 1);
        assert!(d
            .restored
            .iter()
            .any(|s| s.tuples() == [TupleId(0), TupleId(6)]));
        assert_eq!(
            apply_delete(&before, &d),
            canonicalize(full_disjunction(&db))
        );
    }

    #[test]
    fn delete_delta_drops_without_restoring_when_fragments_extend() {
        let mut db = tourist_database();
        let before = full_disjunction(&db);
        // Delete s2 (Mount Logan): {c1, s2} dies; the fragment {c1} grows
        // into surviving results, so nothing resurfaces.
        db.remove_tuple(TupleId(7)).unwrap();
        let d = FdQuery::over(&db)
            .delta_delete(TupleId(7), &before)
            .unwrap();
        assert_eq!(d.dropped.len(), 1);
        assert!(d.restored.is_empty());
        assert_eq!(
            apply_delete(&before, &d),
            canonicalize(full_disjunction(&db))
        );
    }

    #[test]
    fn insert_then_delete_round_trips() {
        let mut db = tourist_database();
        let before = canonicalize(full_disjunction(&db));
        let t = db
            .insert_tuple(RelId(0), vec!["Chile".into(), "arid".into()])
            .unwrap();
        let ins = FdQuery::over(&db).delta_insert(t, &before).unwrap();
        let mid = apply_insert(&before, &ins);
        db.remove_tuple(t).unwrap();
        let del = FdQuery::over(&db).delta_delete(t, &mid).unwrap();
        assert_eq!(apply_delete(&mid, &del), before);
    }

    #[test]
    fn insert_delta_emits_no_duplicates_and_no_nonmaximal_sets() {
        let mut db = tourist_database();
        let before = full_disjunction(&db);
        let t = db
            .insert_tuple(
                RelId(2),
                vec!["Canada".into(), "Toronto".into(), "CN Tower".into()],
            )
            .unwrap();
        let d = FdQuery::over(&db).delta_insert(t, &before).unwrap();
        for (i, a) in d.added.iter().enumerate() {
            for (j, b) in d.added.iter().enumerate() {
                if i != j {
                    assert_ne!(a.tuples(), b.tuples(), "duplicate emission");
                    assert!(!a.is_subset_of(b), "non-maximal emission {a} ⊆ {b}");
                }
            }
        }
        assert_eq!(
            apply_insert(&before, &d),
            canonicalize(full_disjunction(&db))
        );
    }

    /// Applies a batch delta the way a session commit does.
    fn apply_batch_delta(previous: &[TupleSet], d: &BatchDelta) -> Vec<TupleSet> {
        let mut out: Vec<TupleSet> = previous
            .iter()
            .filter(|s| !d.retracted.contains(s))
            .cloned()
            .collect();
        out.extend(d.added.iter().cloned());
        canonicalize(out)
    }

    #[test]
    fn multi_seed_insert_matches_recomputation() {
        let mut db = tourist_database();
        let before = full_disjunction(&db);
        // Two overlapping fresh tuples: a new hotel and a new site that
        // join each other (both in London, Canada) *and* existing tuples.
        let t1 = db
            .insert_tuple(
                RelId(1),
                vec![
                    "Canada".into(),
                    "London".into(),
                    "Fairmont".into(),
                    Value::Int(5),
                ],
            )
            .unwrap();
        let t2 = db
            .insert_tuple(
                RelId(2),
                vec!["Canada".into(), "London".into(), "Storybook Gardens".into()],
            )
            .unwrap();
        let d = delta_insert_many(&db, &[t1, t2], &before, FdConfig::default());
        assert!(d.added.iter().all(|s| s.contains(t1) || s.contains(t2)));
        assert!(
            d.added.iter().any(|s| s.contains(t1) && s.contains(t2)),
            "overlapping seeds must combine in one run"
        );
        // No duplicates, no non-maximal emissions.
        for (i, a) in d.added.iter().enumerate() {
            for (j, b) in d.added.iter().enumerate() {
                if i != j {
                    assert_ne!(a.tuples(), b.tuples(), "duplicate emission");
                    assert!(!a.is_subset_of(b), "non-maximal emission {a} ⊆ {b}");
                }
            }
        }
        assert_eq!(
            apply_insert(&before, &d),
            canonicalize(full_disjunction(&db))
        );
    }

    #[test]
    fn grouped_delete_matches_recomputation() {
        let mut db = tourist_database();
        let before = full_disjunction(&db);
        // Delete a1 and a2 together: {c1, a1} and {c1, a2, s1} die;
        // {c1, s1} resurfaces once (not once per delete).
        db.remove_tuple(TupleId(3)).unwrap();
        db.remove_tuple(TupleId(4)).unwrap();
        let d = delta_delete_many(&db, &[TupleId(3), TupleId(4)], &before, FdConfig::default());
        assert_eq!(d.dropped.len(), 2);
        assert_eq!(
            d.restored
                .iter()
                .filter(|s| s.tuples() == [TupleId(0), TupleId(6)])
                .count(),
            1
        );
        assert_eq!(
            apply_delete(&before, &d),
            canonicalize(full_disjunction(&db))
        );
    }

    #[test]
    fn batch_delta_matches_recomputation_and_nets_out_intermediates() {
        let mut db = tourist_database();
        let before = full_disjunction(&db);
        // One transaction: delete c1, insert a hotel that would have
        // joined c1. A singleton replay (insert first) would add a set
        // containing both and retract it one step later; the batch's
        // single pass must never surface it.
        let t = db
            .insert_tuple(
                RelId(1),
                vec![
                    "Canada".into(),
                    "London".into(),
                    "Fairmont".into(),
                    Value::Int(5),
                ],
            )
            .unwrap();
        db.remove_tuple(TupleId(0)).unwrap();
        let d = delta_batch(&db, &[t], &[TupleId(0)], &before, FdConfig::default());
        assert!(
            d.added.iter().all(|s| !s.contains(TupleId(0))),
            "no event may mention the deleted tuple"
        );
        assert!(d.added.iter().any(|s| s.contains(t)));
        assert_eq!(
            apply_batch_delta(&before, &d),
            canonicalize(full_disjunction(&db))
        );
    }

    #[test]
    fn engines_and_block_modes_agree_on_deltas() {
        let mut db = tourist_database();
        let before = full_disjunction(&db);
        let t = db
            .insert_tuple(
                RelId(1),
                vec!["UK".into(), "London".into(), "Savoy".into(), 5.into()],
            )
            .unwrap();
        let base: Vec<Vec<TupleId>> = {
            let d = FdQuery::over(&db).delta_insert(t, &before).unwrap();
            canonicalize(d.added)
                .iter()
                .map(|s| s.tuples().to_vec())
                .collect()
        };
        for engine in [crate::StoreEngine::Scan, crate::StoreEngine::Indexed] {
            for page_size in [None, Some(2), Some(64)] {
                let mut q = FdQuery::over(&db).engine(engine);
                if let Some(ps) = page_size {
                    q = q.page_size(ps);
                }
                let d = q.delta_insert(t, &before).unwrap();
                let got: Vec<Vec<TupleId>> = canonicalize(d.added)
                    .iter()
                    .map(|s| s.tuples().to_vec())
                    .collect();
                assert_eq!(base, got, "engine {engine:?}, pages {page_size:?}");
            }
        }
    }
}
