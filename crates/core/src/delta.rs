//! Delta maintenance of a materialized full disjunction under tuple
//! inserts and deletes.
//!
//! The paper's `FDi(R)` primitive (Theorem 4.10) computes exactly the
//! tuple sets of the full disjunction containing a tuple of `Ri` — so the
//! delta of inserting a tuple `t` is an `FDi`-style run seeded at the
//! singleton `{t}`:
//!
//! * [`delta_insert`] — after `t` enters the database, the new `FD`
//!   differs from the old one by (a) the maximal join-consistent
//!   connected sets *containing `t`* (all new — no pre-existing set can
//!   contain a tuple that did not exist) and (b) the old results those
//!   new sets strictly subsume. The sets of (a) are found by running
//!   `GETNEXTRESULT` with `Incomplete = [{t}]` and the line-10 root
//!   filter tightened to "contains `t`", which is `INCREMENTALFD` over
//!   the database in which `t`'s relation is replaced by `{t}`.
//! * [`delta_delete`] — after `t` leaves, every result containing `t`
//!   dies, and a previously-subsumed set can resurface. A newly maximal
//!   set `M` must be connected, contain no tuple of a surviving result
//!   superset, and satisfy `M ⊆ S \ {t}` for some dropped result `S`
//!   (any other old superset of `M` would still be a superset); being
//!   maximal and connected inside `S \ {t}`, it is a *connected
//!   component* of `S \ {t}`. The survivors are therefore re-derived by
//!   splitting each dropped set and keeping the components that are
//!   non-extendable and not already present.
//!
//! Both functions are pure: database + previous results in, delta out.
//! The `fd-live` crate layers the stateful subscription engine on top.

use crate::getnext::{get_next_result, ScanScope};
use crate::incremental::FdConfig;
use crate::jcc::{extend_to_maximal, rebuild};
use crate::stats::Stats;
use crate::store::{CompleteStore, IncompleteQueue};
use crate::tupleset::TupleSet;
use fd_relational::fxhash::FxHashSet;
use fd_relational::storage::Pager;
use fd_relational::{Database, TupleId};

/// The effect of one tuple insertion on the full disjunction.
#[derive(Debug, Clone, Default)]
pub struct InsertDelta {
    /// New maximal sets — each contains the inserted tuple; no duplicates,
    /// no set subsumed by another.
    pub added: Vec<TupleSet>,
    /// Previous results that became non-maximal (strict subsets of some
    /// `added` set) and must be retracted.
    pub subsumed: Vec<TupleSet>,
    /// Work counters of the maintenance run.
    pub stats: Stats,
}

/// The effect of one tuple deletion on the full disjunction.
#[derive(Debug, Clone, Default)]
pub struct DeleteDelta {
    /// Previous results containing the deleted tuple; they must be
    /// retracted.
    pub dropped: Vec<TupleSet>,
    /// Sets that become maximal once the `dropped` results are gone —
    /// connected components of `S \ {t}` that cannot be extended and are
    /// not already results.
    pub restored: Vec<TupleSet>,
    /// Work counters of the maintenance run.
    pub stats: Stats,
}

/// Computes the full-disjunction delta of inserting tuple `t`.
///
/// `db` must already contain `t` (live); `previous` is the materialized
/// full disjunction of the database *without* `t`. Runs in incremental
/// polynomial time per emitted set (Theorem 4.10 applied to the instance
/// whose `Ri` is `{t}`), independent of how many runs a full
/// recomputation would need.
///
/// Builder equivalent (preferred — no bare `FdConfig` plumbing):
/// `FdQuery::over(&db).delta_insert(t, previous)` — see
/// [`crate::FdQuery::delta_insert`].
pub fn delta_insert(
    db: &Database,
    t: TupleId,
    previous: &[TupleSet],
    cfg: FdConfig,
) -> InsertDelta {
    debug_assert!(db.is_live(t), "insert delta requires a live seed tuple");
    let mut stats = Stats::new();
    let mut incomplete = IncompleteQueue::new(cfg.engine);
    incomplete.push(t, TupleSet::singleton(db, t), &mut stats);
    let mut complete = CompleteStore::new(cfg.engine);
    let pager = cfg.page_size.map(|ps| Pager::new(db, ps));
    let scope = ScanScope {
        db,
        ri: db.rel_of(t),
        rel_min: 0,
        seed: Some(t),
        pager: pager.as_ref(),
    };

    let mut added: Vec<TupleSet> = Vec::new();
    let mut emitted: FxHashSet<Box<[TupleId]>> = FxHashSet::default();
    while let Some((_, set)) = get_next_result(&scope, &mut incomplete, &complete, &mut stats) {
        // The Complete store already suppresses subsets of printed sets;
        // the canonical filter additionally drops exact re-derivations.
        if emitted.insert(set.tuples().into()) {
            complete.insert(set.clone(), &[t]);
            added.push(set);
        }
    }

    let subsumed = previous
        .iter()
        .filter(|prev| {
            // A subsumed old set is a strict subset of a new one (never
            // equal: it cannot contain the fresh tuple `t`).
            added.iter().any(|new| prev.is_subset_of(new))
        })
        .cloned()
        .collect();
    InsertDelta {
        added,
        subsumed,
        stats,
    }
}

/// Computes the full-disjunction delta of deleting tuple `t`.
///
/// `db` must already have `t` removed (tombstoned); `previous` is the
/// materialized full disjunction of the database *with* `t`. The cost is
/// proportional to the dropped results and one maximality probe per
/// resurfacing candidate — not to the size of the database's full
/// disjunction.
///
/// Builder equivalent (preferred — no bare `FdConfig` plumbing):
/// `FdQuery::over(&db).delta_delete(t, previous)` — see
/// [`crate::FdQuery::delta_delete`].
pub fn delta_delete(
    db: &Database,
    t: TupleId,
    previous: &[TupleSet],
    cfg: FdConfig,
) -> DeleteDelta {
    debug_assert!(!db.is_live(t), "delete delta runs after the tombstone");
    let _ = cfg; // store engine choice does not affect this path (yet)
    let mut stats = Stats::new();
    let mut dropped: Vec<TupleSet> = Vec::new();
    let mut survivors: FxHashSet<&[TupleId]> = FxHashSet::default();
    for prev in previous {
        if prev.contains(t) {
            dropped.push(prev.clone());
        } else {
            survivors.insert(prev.tuples());
        }
    }

    let mut restored: Vec<TupleSet> = Vec::new();
    let mut seen: FxHashSet<Box<[TupleId]>> = FxHashSet::default();
    for set in &dropped {
        let remnant: Vec<TupleId> = set.tuples().iter().copied().filter(|&u| u != t).collect();
        for component in connected_components(db, &remnant) {
            if !seen.insert(component.clone().into_boxed_slice()) {
                continue;
            }
            if survivors.contains(component.as_slice()) {
                continue;
            }
            let candidate = rebuild(db, component);
            // Maximality probe: a candidate that grows was (and remains)
            // subsumed by an existing result — extend_to_maximal reaches
            // a maximal superset, which either survives in `previous` or
            // is itself a component of another dropped set.
            let extended = extend_to_maximal(db, candidate.clone(), &mut stats);
            if extended.tuples() == candidate.tuples() {
                restored.push(candidate);
            }
        }
    }
    DeleteDelta {
        dropped,
        restored,
        stats,
    }
}

/// Splits a join-consistent member list into its connected components
/// (connectivity over the members' relations, as in Theorem 4.8's
/// auxiliary graph). Members arrive sorted; components come out sorted.
fn connected_components(db: &Database, members: &[TupleId]) -> Vec<Vec<TupleId>> {
    let n = members.len();
    let mut assigned = vec![false; n];
    let mut out = Vec::new();
    for start in 0..n {
        if assigned[start] {
            continue;
        }
        let mut component = vec![start];
        assigned[start] = true;
        let mut frontier = vec![start];
        while let Some(i) = frontier.pop() {
            for j in 0..n {
                if !assigned[j] && db.rels_connected(db.rel_of(members[i]), db.rel_of(members[j])) {
                    assigned[j] = true;
                    component.push(j);
                    frontier.push(j);
                }
            }
        }
        component.sort_unstable();
        out.push(component.into_iter().map(|i| members[i]).collect());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incremental::{canonicalize, FdIter};
    use crate::query::FdQuery;
    use fd_relational::{tourist_database, RelId, Value};

    fn full_disjunction(db: &Database) -> Vec<TupleSet> {
        FdIter::new(db).collect()
    }

    /// Applies a delta to a materialized result list the way `fd-live`
    /// does, so the invariant `apply(delta(FD_old)) == FD_new` is checked
    /// against a from-scratch recomputation.
    fn apply_insert(previous: &[TupleSet], d: &InsertDelta) -> Vec<TupleSet> {
        let mut out: Vec<TupleSet> = previous
            .iter()
            .filter(|s| !d.subsumed.contains(s))
            .cloned()
            .collect();
        out.extend(d.added.iter().cloned());
        canonicalize(out)
    }

    fn apply_delete(previous: &[TupleSet], d: &DeleteDelta) -> Vec<TupleSet> {
        let mut out: Vec<TupleSet> = previous
            .iter()
            .filter(|s| !d.dropped.contains(s))
            .cloned()
            .collect();
        out.extend(d.restored.iter().cloned());
        canonicalize(out)
    }

    #[test]
    fn insert_delta_matches_recomputation_on_tourist() {
        let mut db = tourist_database();
        let before = full_disjunction(&db);
        // A new Accommodations row joining c1 via Country and s1 via City.
        let t = db
            .insert_tuple(
                RelId(1),
                vec![
                    "Canada".into(),
                    "London".into(),
                    "Fairmont".into(),
                    Value::Int(5),
                ],
            )
            .unwrap();
        let d = FdQuery::over(&db).delta_insert(t, &before).unwrap();
        assert!(!d.added.is_empty());
        assert!(d.added.iter().all(|s| s.contains(t)));
        assert_eq!(
            apply_insert(&before, &d),
            canonicalize(full_disjunction(&db))
        );
    }

    #[test]
    fn insert_delta_subsumes_swallowed_results() {
        // P(A), Q(A, B): inserting the matching Q row swallows {p1}.
        let mut b = fd_relational::DatabaseBuilder::new();
        b.relation("P", &["A"]).row([1]);
        b.relation("Q", &["A", "B"]);
        let mut db = b.build().unwrap();
        let before = full_disjunction(&db);
        assert_eq!(before.len(), 1); // {p1}
        let t = db.insert_tuple(RelId(1), vec![1.into(), 2.into()]).unwrap();
        let d = FdQuery::over(&db).delta_insert(t, &before).unwrap();
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.added[0].len(), 2);
        assert_eq!(d.subsumed.len(), 1);
        assert_eq!(
            apply_insert(&before, &d),
            canonicalize(full_disjunction(&db))
        );
    }

    #[test]
    fn delete_delta_restores_fragments() {
        let mut db = tourist_database();
        let before = full_disjunction(&db);
        // Delete a2 (the London Ramada): {c1, a2, s1} dies; {c1, s1} must
        // resurface (a1 conflicts with s1 on City, so it is maximal).
        db.remove_tuple(TupleId(4)).unwrap();
        let d = FdQuery::over(&db)
            .delta_delete(TupleId(4), &before)
            .unwrap();
        assert_eq!(d.dropped.len(), 1);
        assert!(d
            .restored
            .iter()
            .any(|s| s.tuples() == [TupleId(0), TupleId(6)]));
        assert_eq!(
            apply_delete(&before, &d),
            canonicalize(full_disjunction(&db))
        );
    }

    #[test]
    fn delete_delta_drops_without_restoring_when_fragments_extend() {
        let mut db = tourist_database();
        let before = full_disjunction(&db);
        // Delete s2 (Mount Logan): {c1, s2} dies; the fragment {c1} grows
        // into surviving results, so nothing resurfaces.
        db.remove_tuple(TupleId(7)).unwrap();
        let d = FdQuery::over(&db)
            .delta_delete(TupleId(7), &before)
            .unwrap();
        assert_eq!(d.dropped.len(), 1);
        assert!(d.restored.is_empty());
        assert_eq!(
            apply_delete(&before, &d),
            canonicalize(full_disjunction(&db))
        );
    }

    #[test]
    fn insert_then_delete_round_trips() {
        let mut db = tourist_database();
        let before = canonicalize(full_disjunction(&db));
        let t = db
            .insert_tuple(RelId(0), vec!["Chile".into(), "arid".into()])
            .unwrap();
        let ins = FdQuery::over(&db).delta_insert(t, &before).unwrap();
        let mid = apply_insert(&before, &ins);
        db.remove_tuple(t).unwrap();
        let del = FdQuery::over(&db).delta_delete(t, &mid).unwrap();
        assert_eq!(apply_delete(&mid, &del), before);
    }

    #[test]
    fn insert_delta_emits_no_duplicates_and_no_nonmaximal_sets() {
        let mut db = tourist_database();
        let before = full_disjunction(&db);
        let t = db
            .insert_tuple(
                RelId(2),
                vec!["Canada".into(), "Toronto".into(), "CN Tower".into()],
            )
            .unwrap();
        let d = FdQuery::over(&db).delta_insert(t, &before).unwrap();
        for (i, a) in d.added.iter().enumerate() {
            for (j, b) in d.added.iter().enumerate() {
                if i != j {
                    assert_ne!(a.tuples(), b.tuples(), "duplicate emission");
                    assert!(!a.is_subset_of(b), "non-maximal emission {a} ⊆ {b}");
                }
            }
        }
        assert_eq!(
            apply_insert(&before, &d),
            canonicalize(full_disjunction(&db))
        );
    }

    #[test]
    fn engines_and_block_modes_agree_on_deltas() {
        let mut db = tourist_database();
        let before = full_disjunction(&db);
        let t = db
            .insert_tuple(
                RelId(1),
                vec!["UK".into(), "London".into(), "Savoy".into(), 5.into()],
            )
            .unwrap();
        let base: Vec<Vec<TupleId>> = {
            let d = FdQuery::over(&db).delta_insert(t, &before).unwrap();
            canonicalize(d.added)
                .iter()
                .map(|s| s.tuples().to_vec())
                .collect()
        };
        for engine in [crate::StoreEngine::Scan, crate::StoreEngine::Indexed] {
            for page_size in [None, Some(2), Some(64)] {
                let mut q = FdQuery::over(&db).engine(engine);
                if let Some(ps) = page_size {
                    q = q.page_size(ps);
                }
                let d = q.delta_insert(t, &before).unwrap();
                let got: Vec<Vec<TupleId>> = canonicalize(d.added)
                    .iter()
                    .map(|s| s.tuples().to_vec())
                    .collect();
                assert_eq!(base, got, "engine {engine:?}, pages {page_size:?}");
            }
        }
    }
}
