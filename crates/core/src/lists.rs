//! The `Complete` and `Incomplete` lists of `INCREMENTALFD` (Fig. 1).
//!
//! The paper stores both as linked lists and scans them linearly; its
//! Section 7 then recommends hashing the tuple sets by their tuple from
//! `Ri` — every merge or containment candidate necessarily shares that
//! *root tuple*, because a valid tuple set holds at most one tuple per
//! relation. Both engines are provided behind one interface so the
//! ablation benchmark (experiment E10) can compare them; they produce
//! identical results and differ only in scan work.

use crate::jcc::try_union;
use crate::stats::Stats;
use crate::tupleset::TupleSet;
use fd_relational::fxhash::{FxHashMap, FxHashSet};
use fd_relational::{Database, TupleId};
use std::collections::VecDeque;

/// Which store implementation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreEngine {
    /// Linear scans over a list — the paper's Fig. 1/2 data structure.
    Scan,
    /// Hash index keyed by the root (`Ri`) tuple — Section 7's refinement.
    #[default]
    Indexed,
}

/// The `Complete` list: results already printed.
#[derive(Debug)]
pub struct CompleteStore {
    engine: StoreEngine,
    sets: Vec<TupleSet>,
    /// Indexed engine: root tuple → indices into `sets`.
    by_root: FxHashMap<TupleId, Vec<u32>>,
    /// Exact-membership fingerprints (used by the ranked variant's
    /// "already printed?" check, Fig. 3 line 17).
    canon: FxHashSet<Box<[TupleId]>>,
}

impl CompleteStore {
    /// An empty store.
    pub fn new(engine: StoreEngine) -> Self {
        CompleteStore {
            engine,
            sets: Vec::new(),
            by_root: FxHashMap::default(),
            canon: FxHashSet::default(),
        }
    }

    /// Number of stored results.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// The stored results, in print order.
    pub fn sets(&self) -> &[TupleSet] {
        &self.sets
    }

    /// Inserts a printed result. `roots` are the tuples under which the
    /// set should be discoverable — for `INCREMENTALFD(R, i)` that is the
    /// set's `Ri` tuple; the ranked variant registers every member (its
    /// `Complete` list is shared by all `n` queues).
    pub fn insert(&mut self, set: TupleSet, roots: &[TupleId]) {
        let idx = self.sets.len() as u32;
        self.canon.insert(set.tuples().into());
        if self.engine == StoreEngine::Indexed {
            for &r in roots {
                self.by_root.entry(r).or_default().push(idx);
            }
        }
        self.sets.push(set);
    }

    /// Fig. 2 line 11: is `t` contained in some stored result? `root` is
    /// `t`'s tuple from `Ri`; any superset must also contain it.
    pub fn contains_superset(&self, t: &TupleSet, root: TupleId, stats: &mut Stats) -> bool {
        match self.engine {
            StoreEngine::Scan => self.sets.iter().any(|s| {
                stats.complete_scans += 1;
                t.is_subset_of(s)
            }),
            StoreEngine::Indexed => match self.by_root.get(&root) {
                Some(idxs) => idxs.iter().any(|&i| {
                    stats.complete_scans += 1;
                    t.is_subset_of(&self.sets[i as usize])
                }),
                None => false,
            },
        }
    }

    /// Fig. 3 line 17: has exactly this set been printed already?
    pub fn contains_exact(&self, tuples: &[TupleId]) -> bool {
        self.canon.contains(tuples)
    }
}

/// The `Incomplete` list: tuple sets awaiting extension.
///
/// **Ordering.** Table 3 of the paper pins the list discipline down: the
/// sets created during one `GETNEXTRESULT` call are placed *in front of*
/// the older entries, preserving their creation order (Iteration 2 pops
/// `{c1,a2,s1}` — created in Iteration 1 — while `{c2}` from the
/// initialization still waits). We reproduce that exactly: pushes
/// accumulate in a batch; the batch is spliced onto the front of the list
/// when the next `pop` happens. Correctness does not depend on the order
/// (Theorem 4.2 holds for any), but the trace and the delay profile do.
#[derive(Debug)]
pub struct IncompleteQueue {
    engine: StoreEngine,
    /// Slot storage; `None` marks popped slots (stable indices keep the
    /// root index valid without rebuilds).
    slots: Vec<Option<(TupleId, TupleSet)>>,
    /// Older entries, front to back.
    order: VecDeque<u32>,
    /// Entries pushed since the last pop, in creation order; logically
    /// these precede `order`.
    batch: Vec<u32>,
    /// Indexed engine: root tuple → slots (live or dead; filtered on use).
    by_root: FxHashMap<TupleId, Vec<u32>>,
    live: usize,
}

impl IncompleteQueue {
    /// An empty queue.
    pub fn new(engine: StoreEngine) -> Self {
        IncompleteQueue {
            engine,
            slots: Vec::new(),
            order: VecDeque::new(),
            batch: Vec::new(),
            by_root: FxHashMap::default(),
            live: 0,
        }
    }

    /// Number of pending tuple sets.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Adds a tuple set rooted at `root` (its tuple from `Ri`) to the
    /// current batch.
    pub fn push(&mut self, root: TupleId, set: TupleSet, stats: &mut Stats) {
        stats.inserts += 1;
        let slot = self.slots.len() as u32;
        self.slots.push(Some((root, set)));
        self.batch.push(slot);
        if self.engine == StoreEngine::Indexed {
            self.by_root.entry(root).or_default().push(slot);
        }
        self.live += 1;
    }

    /// Fig. 2 line 1: removes the first tuple set (splicing the pending
    /// batch to the front first).
    pub fn pop(&mut self) -> Option<(TupleId, TupleSet)> {
        for slot in self.batch.drain(..).rev() {
            self.order.push_front(slot);
        }
        while let Some(slot) = self.order.pop_front() {
            if let Some(entry) = self.slots[slot as usize].take() {
                self.live -= 1;
                return Some(entry);
            }
        }
        None
    }

    /// Fig. 2 lines 14–15: finds a stored `S` with `JCC(S ∪ T′)` and
    /// replaces it by the union, preserving its queue position. Returns
    /// true when a merge happened. Merge partners must share the root
    /// tuple, which the indexed engine exploits.
    pub fn try_merge(
        &mut self,
        db: &Database,
        root: TupleId,
        t_prime: &TupleSet,
        stats: &mut Stats,
    ) -> bool {
        match self.engine {
            StoreEngine::Scan => {
                // Logical order: pending batch first, then older entries.
                let slots: Vec<u32> = self
                    .batch
                    .iter()
                    .copied()
                    .chain(self.order.iter().copied())
                    .collect();
                for slot in slots {
                    if let Some((_, s)) = &self.slots[slot as usize] {
                        stats.incomplete_scans += 1;
                        if let Some(u) = try_union(db, s, t_prime, stats) {
                            stats.merges += 1;
                            self.slots[slot as usize].as_mut().expect("live slot").1 = u;
                            return true;
                        }
                    }
                }
                false
            }
            StoreEngine::Indexed => {
                let Some(slots) = self.by_root.get(&root) else {
                    return false;
                };
                for &slot in slots {
                    if let Some((_, s)) = &self.slots[slot as usize] {
                        stats.incomplete_scans += 1;
                        if let Some(u) = try_union(db, s, t_prime, stats) {
                            stats.merges += 1;
                            self.slots[slot as usize].as_mut().expect("live slot").1 = u;
                            return true;
                        }
                    }
                }
                false
            }
        }
    }

    /// Iterates live entries in logical (pop) order — pending batch first,
    /// then older entries. Used by trace snapshots and the initialization
    /// strategies.
    pub fn iter(&self) -> impl Iterator<Item = &TupleSet> {
        self.batch
            .iter()
            .chain(self.order.iter())
            .filter_map(move |&slot| self.slots[slot as usize].as_ref().map(|(_, s)| s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jcc::rebuild;
    use fd_relational::tourist_database;

    const C1: TupleId = TupleId(0);
    const C2: TupleId = TupleId(1);
    const A2: TupleId = TupleId(4);
    const S1: TupleId = TupleId(6);

    fn both_engines() -> [StoreEngine; 2] {
        [StoreEngine::Scan, StoreEngine::Indexed]
    }

    #[test]
    fn complete_superset_lookup() {
        let db = tourist_database();
        for engine in both_engines() {
            let mut stats = Stats::new();
            let mut complete = CompleteStore::new(engine);
            let big = rebuild(&db, vec![C1, A2, S1]);
            complete.insert(big, &[C1]);

            let small = rebuild(&db, vec![C1, S1]);
            assert!(complete.contains_superset(&small, C1, &mut stats));

            let other = rebuild(&db, vec![C2]);
            assert!(!complete.contains_superset(&other, C2, &mut stats));
        }
    }

    #[test]
    fn complete_exact_lookup() {
        let db = tourist_database();
        let mut complete = CompleteStore::new(StoreEngine::Indexed);
        let set = rebuild(&db, vec![C1, A2]);
        complete.insert(set, &[C1]);
        assert!(complete.contains_exact(&[C1, A2]));
        assert!(!complete.contains_exact(&[C1]));
    }

    #[test]
    fn queue_is_fifo() {
        let db = tourist_database();
        for engine in both_engines() {
            let mut stats = Stats::new();
            let mut q = IncompleteQueue::new(engine);
            q.push(C1, TupleSet::singleton(&db, C1), &mut stats);
            q.push(C2, TupleSet::singleton(&db, C2), &mut stats);
            assert_eq!(q.len(), 2);
            assert_eq!(q.pop().unwrap().0, C1);
            assert_eq!(q.pop().unwrap().0, C2);
            assert!(q.pop().is_none());
            assert!(q.is_empty());
        }
    }

    #[test]
    fn merge_replaces_in_place_keeping_order() {
        let db = tourist_database();
        for engine in both_engines() {
            let mut stats = Stats::new();
            let mut q = IncompleteQueue::new(engine);
            // Example 4.1: Incomplete holds {c1,a2}, {c2}; merging
            // T′ = {c1,s1} replaces {c1,a2} with {c1,a2,s1} in place.
            q.push(C1, rebuild(&db, vec![C1, A2]), &mut stats);
            q.push(C2, TupleSet::singleton(&db, C2), &mut stats);

            let t_prime = rebuild(&db, vec![C1, S1]);
            assert!(q.try_merge(&db, C1, &t_prime, &mut stats));
            assert_eq!(stats.merges, 1);

            let (root, merged) = q.pop().unwrap();
            assert_eq!(root, C1);
            assert_eq!(merged.tuples(), &[C1, A2, S1]);
            assert_eq!(q.pop().unwrap().0, C2);
        }
    }

    #[test]
    fn merge_fails_without_candidates() {
        let db = tourist_database();
        for engine in both_engines() {
            let mut stats = Stats::new();
            let mut q = IncompleteQueue::new(engine);
            q.push(C2, TupleSet::singleton(&db, C2), &mut stats);
            let t_prime = rebuild(&db, vec![C1, S1]);
            assert!(!q.try_merge(&db, C1, &t_prime, &mut stats));
        }
    }

    #[test]
    fn indexed_engine_scans_fewer_entries() {
        let db = tourist_database();
        let mut scan_stats = Stats::new();
        let mut idx_stats = Stats::new();
        let t_prime = rebuild(&db, vec![C1, S1]);

        let mut q = IncompleteQueue::new(StoreEngine::Scan);
        q.push(C2, TupleSet::singleton(&db, C2), &mut scan_stats);
        q.push(C1, rebuild(&db, vec![C1, A2]), &mut scan_stats);
        assert!(q.try_merge(&db, C1, &t_prime, &mut scan_stats));

        let mut q = IncompleteQueue::new(StoreEngine::Indexed);
        q.push(C2, TupleSet::singleton(&db, C2), &mut idx_stats);
        q.push(C1, rebuild(&db, vec![C1, A2]), &mut idx_stats);
        assert!(q.try_merge(&db, C1, &t_prime, &mut idx_stats));

        assert!(idx_stats.incomplete_scans < scan_stats.incomplete_scans);
    }

    #[test]
    fn popped_slots_are_skipped() {
        let db = tourist_database();
        let mut stats = Stats::new();
        let mut q = IncompleteQueue::new(StoreEngine::Indexed);
        q.push(C1, rebuild(&db, vec![C1, A2]), &mut stats);
        let _ = q.pop();
        // Merge must not resurrect the popped slot.
        let t_prime = rebuild(&db, vec![C1, S1]);
        assert!(!q.try_merge(&db, C1, &t_prime, &mut stats));
        assert_eq!(q.iter().count(), 0);
    }
}
