//! Instrumentation counters.
//!
//! The paper's complexity results (Theorems 4.8, 4.10, Lemma 5.3) bound
//! the number of JCC checks, list scans and merges. The ablation
//! experiments (Section 7) compare exactly those operation counts across
//! store engines and initialization strategies, so every algorithm in this
//! crate threads a [`Stats`] through and counts its work.

/// Operation counters accumulated during a full-disjunction run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Pairwise or set-level join-consistency+connectivity checks.
    pub jcc_checks: u64,
    /// Tuples examined by the extension loop (Fig. 2 lines 2–6).
    pub extension_scans: u64,
    /// Full passes of the extension fixpoint loop.
    pub extension_passes: u64,
    /// Tuples examined by the `foreach tb` loop (Fig. 2 line 7).
    pub candidate_scans: u64,
    /// Maximal-subset computations (Fig. 2 line 8 / footnote 3).
    pub subset_computations: u64,
    /// Entries of `Complete` examined for the containment check (line 11).
    pub complete_scans: u64,
    /// Entries of `Incomplete` examined for the merge check (line 14).
    pub incomplete_scans: u64,
    /// Successful merges (line 15: replace `S` by `S ∪ T′`).
    pub merges: u64,
    /// Direct insertions into `Incomplete` (line 18).
    pub inserts: u64,
    /// Tuple sets returned as results.
    pub results: u64,
    /// Priority-queue pushes (ranked variant).
    pub heap_pushes: u64,
    /// Priority-queue pops, including stale entries (ranked variant).
    pub heap_pops: u64,
    /// Ranking-function evaluations (ranked variant).
    pub rank_evals: u64,
    /// Approximate-join-function evaluations (approx variant).
    pub approx_evals: u64,
}

impl Stats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sums counters pairwise (used to combine per-run and per-thread
    /// statistics).
    pub fn merge(&mut self, other: &Stats) {
        self.jcc_checks += other.jcc_checks;
        self.extension_scans += other.extension_scans;
        self.extension_passes += other.extension_passes;
        self.candidate_scans += other.candidate_scans;
        self.subset_computations += other.subset_computations;
        self.complete_scans += other.complete_scans;
        self.incomplete_scans += other.incomplete_scans;
        self.merges += other.merges;
        self.inserts += other.inserts;
        self.results += other.results;
        self.heap_pushes += other.heap_pushes;
        self.heap_pops += other.heap_pops;
        self.rank_evals += other.rank_evals;
        self.approx_evals += other.approx_evals;
    }

    /// Total list-scan work — the dominant `f²` factor of Theorem 4.8 that
    /// Section 7's indexing attacks.
    pub fn total_store_scans(&self) -> u64 {
        self.complete_scans + self.incomplete_scans
    }

    /// Every counter as a stable `(name, value)` list, in declaration
    /// order. This is the single source of truth for the counter names:
    /// [`Display`](std::fmt::Display), the `fd --stats` CLI output, the
    /// serve `stats` reply and the Prometheus `fd_ops_total{op=…}`
    /// series all derive from it, so the spellings can never drift
    /// apart.
    pub fn fields(&self) -> [(&'static str, u64); 14] {
        [
            ("jcc_checks", self.jcc_checks),
            ("extension_scans", self.extension_scans),
            ("extension_passes", self.extension_passes),
            ("candidate_scans", self.candidate_scans),
            ("subset_computations", self.subset_computations),
            ("complete_scans", self.complete_scans),
            ("incomplete_scans", self.incomplete_scans),
            ("merges", self.merges),
            ("inserts", self.inserts),
            ("results", self.results),
            ("heap_pushes", self.heap_pushes),
            ("heap_pops", self.heap_pops),
            ("rank_evals", self.rank_evals),
            ("approx_evals", self.approx_evals),
        ]
    }
}

/// One `name=value` line per counter, in declaration order — the stable
/// rendering shared by `fd --stats`, the serve `stats` reply and the
/// metrics exposition.
impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (name, value) in self.fields() {
            writeln!(f, "{name}={value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let mut a = Stats {
            jcc_checks: 1,
            merges: 2,
            ..Stats::new()
        };
        let b = Stats {
            jcc_checks: 10,
            inserts: 5,
            ..Stats::new()
        };
        a.merge(&b);
        assert_eq!(a.jcc_checks, 11);
        assert_eq!(a.merges, 2);
        assert_eq!(a.inserts, 5);
    }

    #[test]
    fn store_scan_total() {
        let s = Stats {
            complete_scans: 3,
            incomplete_scans: 4,
            ..Stats::new()
        };
        assert_eq!(s.total_store_scans(), 7);
    }

    #[test]
    fn display_is_one_name_value_line_per_counter() {
        let s = Stats {
            jcc_checks: 12,
            merges: 3,
            ..Stats::new()
        };
        let text = s.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), s.fields().len());
        assert_eq!(lines[0], "jcc_checks=12");
        assert!(lines.contains(&"merges=3"));
        assert!(lines.contains(&"approx_evals=0"));
        // Display and fields() must agree exactly.
        for ((name, value), line) in s.fields().iter().zip(&lines) {
            assert_eq!(*line, format!("{name}={value}"));
        }
    }
}
