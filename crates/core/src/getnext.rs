//! `GETNEXTRESULT` (Fig. 2 of the paper).
//!
//! Given the relations, the index `i`, and the `Incomplete`/`Complete`
//! lists, produce the next result of `FDi(R)`:
//!
//! ```text
//!  1  remove the first tuple set T from Incomplete
//!  2  while there is a tuple tg ∉ T with JCC(T ∪ {tg})
//!  4      add tg to T                            (maximal extension)
//!  7  foreach tuple tb ∈ Tuples(R), tb ∉ T
//!  8      T′ := the maximal subset of T ∪ {tb} containing tb with JCC(T′)
//! 10      if T′ contains a tuple from Ri
//! 11          if T′ is contained in a tuple set of Complete: skip
//! 14          else if ∃ S ∈ Incomplete with JCC(S ∪ T′): S := S ∪ T′
//! 18          else append T′ to Incomplete
//! 19  return T
//! ```
//!
//! The same routine serves the plain, ranked and restricted (Section 7)
//! executions; a [`ScanScope`] carries the run-dependent knobs.

use crate::jcc::{extend_to_maximal_from, maximal_subset_with};
use crate::lists::{CompleteStore, IncompleteQueue};
use crate::stats::Stats;
use crate::tupleset::TupleSet;
use fd_relational::storage::Pager;
use fd_relational::{Database, RelId, TupleId};

/// Run-dependent scan configuration for one `INCREMENTALFD(R, i)` run.
pub(crate) struct ScanScope<'db, 'p> {
    /// The database.
    pub db: &'db Database,
    /// The run's relation `Ri`: results must contain one of its tuples.
    pub ri: RelId,
    /// First relation index included in the extension and candidate scans
    /// (0 for the standalone algorithm; `i + 1` under Section 7's
    /// repeated-work optimization, which relies on a global `Complete`).
    pub rel_min: usize,
    /// Tightens line 10's root filter from "contains a tuple of `Ri`" to
    /// "contains one of these tuples". Used by the delta-maintenance run
    /// seeded at freshly inserted tuples: with a single seed `t` that run
    /// is `INCREMENTALFD(R', i)` over the database in which `Ri` is
    /// replaced by `{t}` (Theorem 4.10 then says it emits exactly the
    /// maximal join-consistent connected sets containing `t`); with `k`
    /// seeds it is the batched union of those runs — `Incomplete` starts
    /// from all `k` singletons, a derivation's root is the first seed it
    /// contains, and printed sets register under *every* contained seed
    /// so the line-11 suppression stays root-complete. Empty means no
    /// seed filter (the plain and ranked executions).
    pub seeds: &'p [TupleId],
    /// Derivation memo for seeded runs: the canonical member lists of
    /// every `T′` already processed by lines 10–18. A re-derived exact
    /// duplicate is a no-op — it is either still in `Incomplete` (the
    /// line-14 merge with its own growth succeeds trivially), was merged
    /// into an entry that still covers it, or is covered by a printed
    /// superset (`Complete` only grows) — so it can skip the store scans
    /// entirely. Seeded runs re-derive heavily (every pop scans every
    /// candidate, and cross-seed derivations repeat per pop), which is
    /// why they carry the memo; the plain runs keep the paper's exact
    /// trace.
    pub memo: Option<&'p std::cell::RefCell<fd_relational::fxhash::FxHashSet<Box<[TupleId]>>>>,
    /// Block-based execution (Section 7): scan through a pager, counting
    /// page fetches, instead of tuple at a time.
    pub pager: Option<&'p Pager<'db>>,
}

/// The single block-scan code path (previously two near-identical twins):
/// applies `f` to every live tuple of relations `rel_min..n`, each
/// relation in ascending id order — base band then that relation's
/// dynamic inserts — honoring block-based execution when a pager is
/// configured (page granularity is what makes this scan inherently
/// unindexable: every page must be fetched and counted, so the line-7
/// candidate scan stays on this path while the extension loops use
/// [`Database::probe`]).
pub(crate) fn scan_tuples_from(
    db: &Database,
    rel_min: usize,
    pager: Option<&Pager<'_>>,
    mut f: impl FnMut(TupleId),
) {
    for rel_idx in rel_min..db.num_relations() {
        let rel = RelId(rel_idx as u16);
        match pager {
            None => {
                for t in db.tuples_of(rel) {
                    f(t);
                }
            }
            Some(pager) => {
                for block in pager.scan(rel) {
                    for t in block {
                        f(t);
                    }
                }
            }
        }
    }
}

/// Whole-database candidate scan (the Fig. 2 line-7 scan as the ranked
/// and approximate iterators run it): [`scan_tuples_from`] at
/// `rel_min = 0`.
pub(crate) fn scan_candidates(db: &Database, pager: Option<&Pager<'_>>, f: impl FnMut(TupleId)) {
    scan_tuples_from(db, 0, pager, f)
}

impl ScanScope<'_, '_> {
    /// Applies `f` to every candidate tuple in scan scope — the same
    /// shared scan, restricted to relations `≥ rel_min` and counted in
    /// the run's stats.
    fn for_each_candidate(&self, stats: &mut Stats, mut f: impl FnMut(TupleId, &mut Stats)) {
        scan_tuples_from(self.db, self.rel_min, self.pager, |t| {
            stats.candidate_scans += 1;
            f(t, stats);
        });
    }
}

/// One call of `GETNEXTRESULT`. Returns the maximally-extended tuple set
/// removed from `Incomplete` (Fig. 2 returns it for printing; the caller
/// is responsible for appending it to `Complete`). Returns `None` when
/// `Incomplete` is empty.
pub(crate) fn get_next_result(
    scope: &ScanScope<'_, '_>,
    incomplete: &mut IncompleteQueue,
    complete: &CompleteStore,
    stats: &mut Stats,
) -> Option<(TupleId, TupleSet)> {
    let db = scope.db;
    // Line 1: remove the first tuple set.
    let (root, set) = incomplete.pop()?;
    // Lines 2–6: maximal extension.
    let set = extend_to_maximal_from(db, set, scope.rel_min, stats);

    // Multi-seed runs re-derive a maximal set once per contained seed
    // (the singletons are all queued before any suppression can kick
    // in). The candidate loop below depends only on (db, set), so a
    // re-derivation of an already-printed set would regenerate exactly
    // the T′ collection the first emission already processed — skip the
    // scan and let the caller's canonical filter drop the duplicate.
    if !scope.seeds.is_empty() && complete.contains_exact(set.tuples()) {
        stats.results += 1;
        return Some((root, set));
    }

    // Lines 7–18: derive successor tuple sets.
    scope.for_each_candidate(stats, |tb, stats| {
        if set.contains(tb) {
            return;
        }
        // Line 8 (footnote 3): unique maximal JCC subset containing tb.
        let t_prime = maximal_subset_with(db, &set, tb, stats);
        // Line 10: must contain a tuple from Ri (one of the seed tuples
        // in a delta-maintenance run). The any-seed filter is what makes
        // the multi-seed run sound: printed sets suppress derivations of
        // *every* contained seed, and in exchange each pop re-seeds the
        // cross-root representatives that suppression removes. (A
        // tighter "inherit the popped root" filter loses exactly those
        // representatives and drops results.)
        let new_root = if scope.seeds.is_empty() {
            match t_prime.tuple_from(db, scope.ri) {
                Some(root) => root,
                None => return,
            }
        } else {
            match scope.seeds.iter().copied().find(|&s| t_prime.contains(s)) {
                Some(seed) => seed,
                None => return,
            }
        };
        // Seeded runs: skip exact re-derivations (see `ScanScope::memo`).
        if let Some(memo) = scope.memo {
            if !memo.borrow_mut().insert(t_prime.tuples().into()) {
                return;
            }
        }
        // Line 11: already represented in Complete?
        if complete.contains_superset(&t_prime, new_root, stats) {
            return;
        }
        // Lines 14–15: merge into an Incomplete entry sharing the root.
        if incomplete.try_merge(db, new_root, &t_prime, stats) {
            return;
        }
        // Line 18: genuinely new — append.
        incomplete.push(new_root, t_prime, stats);
    });

    stats.results += 1;
    Some((root, set))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lists::StoreEngine;
    use fd_relational::tourist_database;

    const C1: TupleId = TupleId(0);
    const C2: TupleId = TupleId(1);
    const C3: TupleId = TupleId(2);
    const A1: TupleId = TupleId(3);
    const A2: TupleId = TupleId(4);
    const S1: TupleId = TupleId(6);
    const S2: TupleId = TupleId(7);

    /// Drives the first `GETNEXTRESULT` call of Example 4.1 and checks the
    /// exact list contents of Table 3's "Iteration 1" column.
    #[test]
    fn first_iteration_of_example_4_1() {
        let db = tourist_database();
        let mut stats = Stats::new();
        let mut incomplete = IncompleteQueue::new(StoreEngine::Scan);
        let complete = CompleteStore::new(StoreEngine::Scan);
        for t in db.tuples_of(RelId(0)) {
            incomplete.push(t, TupleSet::singleton(&db, t), &mut stats);
        }
        let scope = ScanScope {
            db: &db,
            ri: RelId(0),
            rel_min: 0,
            seeds: &[],
            memo: None,
            pager: None,
        };
        let (root, result) =
            get_next_result(&scope, &mut incomplete, &complete, &mut stats).unwrap();
        assert_eq!(root, C1);
        assert_eq!(result.tuples(), &[C1, A1]);

        let pending: Vec<Vec<TupleId>> = incomplete.iter().map(|s| s.tuples().to_vec()).collect();
        // Table 3, Iteration 1 — exact list contents and order:
        // {c1,a2,s1}, {c1,s2}, {c2}, {c3}.
        assert_eq!(
            pending,
            vec![vec![C1, A2, S1], vec![C1, S2], vec![C2], vec![C3]]
        );
    }

    /// Iteration 2 of Example 4.1: extending {c1, a2, s1} adds nothing new.
    #[test]
    fn second_iteration_adds_nothing() {
        let db = tourist_database();
        let mut stats = Stats::new();
        let mut incomplete = IncompleteQueue::new(StoreEngine::Scan);
        let mut complete = CompleteStore::new(StoreEngine::Scan);
        for t in db.tuples_of(RelId(0)) {
            incomplete.push(t, TupleSet::singleton(&db, t), &mut stats);
        }
        let scope = ScanScope {
            db: &db,
            ri: RelId(0),
            rel_min: 0,
            seeds: &[],
            memo: None,
            pager: None,
        };
        let (_, r1) = get_next_result(&scope, &mut incomplete, &complete, &mut stats).unwrap();
        complete.insert(r1, &[C1]);

        let before: Vec<Vec<TupleId>> = incomplete.iter().map(|s| s.tuples().to_vec()).collect();
        let (_, r2) = get_next_result(&scope, &mut incomplete, &complete, &mut stats).unwrap();
        assert_eq!(r2.tuples(), &[C1, A2, S1]);
        let after: Vec<Vec<TupleId>> = incomplete.iter().map(|s| s.tuples().to_vec()).collect();
        // {c1,a2,s1} was consumed; no new set appeared.
        assert_eq!(after.len(), before.len() - 1);
        assert!(after.contains(&vec![C1, S2]));
        assert!(after.contains(&vec![C2]));
        assert!(after.contains(&vec![C3]));
    }

    #[test]
    fn exhausts_to_none() {
        let db = tourist_database();
        let mut stats = Stats::new();
        let mut incomplete = IncompleteQueue::new(StoreEngine::Indexed);
        let mut complete = CompleteStore::new(StoreEngine::Indexed);
        incomplete.push(C3, TupleSet::singleton(&db, C3), &mut stats);
        let scope = ScanScope {
            db: &db,
            ri: RelId(0),
            rel_min: 0,
            seeds: &[],
            memo: None,
            pager: None,
        };
        let mut count = 0;
        while let Some((root, set)) =
            get_next_result(&scope, &mut incomplete, &complete, &mut stats)
        {
            complete.insert(set, &[root]);
            count += 1;
        }
        // Starting from {c3} alone: {c3,a3} is the only reachable result
        // rooted at c3... plus any sets derived via the candidate loop that
        // contain a Climates tuple reachable from it.
        assert!(count >= 1);
        assert!(complete
            .sets()
            .iter()
            .any(|s| s.tuples() == [C3, TupleId(5)]));
    }

    #[test]
    fn block_based_scan_counts_pages_and_matches_tuple_based() {
        let db = tourist_database();
        let run = |pager: Option<&Pager<'_>>| {
            let mut stats = Stats::new();
            let mut incomplete = IncompleteQueue::new(StoreEngine::Indexed);
            let mut complete = CompleteStore::new(StoreEngine::Indexed);
            for t in db.tuples_of(RelId(0)) {
                incomplete.push(t, TupleSet::singleton(&db, t), &mut stats);
            }
            let scope = ScanScope {
                db: &db,
                ri: RelId(0),
                rel_min: 0,
                seeds: &[],
                memo: None,
                pager,
            };
            let mut out = Vec::new();
            while let Some((root, set)) =
                get_next_result(&scope, &mut incomplete, &complete, &mut stats)
            {
                complete.insert(set.clone(), &[root]);
                out.push(set);
            }
            out
        };
        let tuple_based = run(None);
        let pager = Pager::new(&db, 4);
        let block_based = run(Some(&pager));
        assert_eq!(
            tuple_based
                .iter()
                .map(|s| s.tuples().to_vec())
                .collect::<Vec<_>>(),
            block_based
                .iter()
                .map(|s| s.tuples().to_vec())
                .collect::<Vec<_>>()
        );
        assert!(pager.stats().pages_read() > 0);
    }
}
