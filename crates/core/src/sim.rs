//! Tuple-pair similarity functions — the `sim(t, t′)` ingredient of
//! approximate join functions (Section 6).
//!
//! The paper assumes a symmetric `sim` and notes that "the values
//! `sim(t, t′)` can be defined in many different ways, e.g., using edit
//! distance, tf-idf, etc." (footnote 7). We provide:
//!
//! * [`ExactSim`] — 1.0 iff the pair is join consistent in the exact
//!   sense; turns approximate algorithms back into exact ones;
//! * [`EditDistanceSim`] — per-shared-attribute normalized Levenshtein
//!   similarity for strings, relative closeness for numbers, combined by
//!   the minimum over shared attributes;
//! * [`TableSim`] — explicit per-pair overrides on top of a fallback,
//!   used to reproduce Fig. 4 of the paper verbatim.

use crate::jcc::tuples_join_consistent;
use fd_relational::fxhash::FxHashMap;
use fd_relational::{Database, TupleId, Value};

/// A symmetric tuple-pair similarity in `[0, 1]`.
pub trait Similarity {
    /// `sim(t1, t2)`. Implementations must be symmetric; tuples of the
    /// same relation are never combinable, and callers never ask about
    /// them.
    fn sim(&self, db: &Database, t1: TupleId, t2: TupleId) -> f64;
}

/// Exact-match similarity: 1.0 iff every shared attribute is equal and
/// non-null. With `τ > 0` this reduces approximate full disjunctions to
/// exact ones — a key cross-check between the algorithms.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactSim;

impl Similarity for ExactSim {
    fn sim(&self, db: &Database, t1: TupleId, t2: TupleId) -> f64 {
        if tuples_join_consistent(db, t1, t2) {
            1.0
        } else {
            0.0
        }
    }
}

/// Levenshtein distance with the classic two-row dynamic program.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalized string similarity: `1 − lev(a,b) / max(|a|,|b|)`.
pub fn string_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Value-level similarity: exact types compare structurally; strings via
/// normalized edit distance; numbers via relative closeness
/// `1 − |x−y| / max(|x|,|y|,1)`; nulls and mismatched types score 0.
pub fn value_similarity(a: &Value, b: &Value) -> f64 {
    match (a, b) {
        (Value::Null, _) | (_, Value::Null) => 0.0,
        (Value::Str(x), Value::Str(y)) => string_similarity(x, y),
        (Value::Int(x), Value::Int(y)) => numeric_similarity(*x as f64, *y as f64),
        (Value::Float(x), Value::Float(y)) => numeric_similarity(*x, *y),
        (Value::Int(x), Value::Float(y)) | (Value::Float(y), Value::Int(x)) => {
            numeric_similarity(*x as f64, *y)
        }
        (Value::Bool(x), Value::Bool(y)) if x == y => 1.0,
        (Value::Bool(_), Value::Bool(_)) => 0.0,
        _ => 0.0,
    }
}

fn numeric_similarity(x: f64, y: f64) -> f64 {
    let scale = x.abs().max(y.abs()).max(1.0);
    (1.0 - (x - y).abs() / scale).max(0.0)
}

/// Attribute-wise similarity: the minimum of [`value_similarity`] over
/// the shared attributes of the pair's schemas (0 when the relations
/// share no attribute — such pairs are not connected).
#[derive(Debug, Clone, Copy, Default)]
pub struct EditDistanceSim;

impl Similarity for EditDistanceSim {
    fn sim(&self, db: &Database, t1: TupleId, t2: TupleId) -> f64 {
        let (r1, r2) = (db.rel_of(t1), db.rel_of(t2));
        let shared = db.shared_attrs(r1, r2);
        if shared.is_empty() {
            return 0.0;
        }
        shared
            .iter()
            .map(|&a| {
                let v1 = db.tuple_value(t1, a).expect("shared attr");
                let v2 = db.tuple_value(t2, a).expect("shared attr");
                value_similarity(v1, v2)
            })
            .fold(1.0, f64::min)
    }
}

/// Similarity with explicit per-pair values over a fallback — reproduces
/// the paper's Fig. 4 edge annotations exactly.
#[derive(Debug, Clone)]
pub struct TableSim<S> {
    overrides: FxHashMap<(TupleId, TupleId), f64>,
    fallback: S,
}

impl<S: Similarity> TableSim<S> {
    /// Builds over a fallback similarity.
    pub fn new(fallback: S) -> Self {
        TableSim {
            overrides: FxHashMap::default(),
            fallback,
        }
    }

    /// Sets `sim(a, b) = sim(b, a) = value`.
    pub fn set(&mut self, a: TupleId, b: TupleId, value: f64) -> &mut Self {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.overrides.insert(key, value);
        self
    }
}

impl<S: Similarity> Similarity for TableSim<S> {
    fn sim(&self, db: &Database, t1: TupleId, t2: TupleId) -> f64 {
        let key = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        match self.overrides.get(&key) {
            Some(&v) => v,
            None => self.fallback.sim(db, t1, t2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_relational::tourist_database;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("Canada", "Cannada"), 1);
    }

    #[test]
    fn string_similarity_normalizes() {
        assert_eq!(string_similarity("", ""), 1.0);
        assert!((string_similarity("Canada", "Cannada") - (1.0 - 1.0 / 7.0)).abs() < 1e-12);
        assert_eq!(string_similarity("abc", "xyz"), 0.0);
    }

    #[test]
    fn value_similarity_cases() {
        assert_eq!(value_similarity(&Value::Null, &Value::Int(1)), 0.0);
        assert_eq!(value_similarity(&Value::Int(10), &Value::Int(10)), 1.0);
        assert!(value_similarity(&Value::Int(10), &Value::Int(9)) > 0.8);
        assert_eq!(value_similarity(&Value::str("a"), &Value::Int(1)), 0.0);
        assert_eq!(
            value_similarity(&Value::Bool(true), &Value::Bool(false)),
            0.0
        );
    }

    #[test]
    fn exact_sim_matches_join_consistency() {
        let db = tourist_database();
        let s = ExactSim;
        assert_eq!(s.sim(&db, TupleId(0), TupleId(3)), 1.0); // c1-a1
        assert_eq!(s.sim(&db, TupleId(3), TupleId(6)), 0.0); // a1-s1 (city)
    }

    #[test]
    fn edit_distance_sim_is_min_over_shared_attrs() {
        let db = tourist_database();
        let s = EditDistanceSim;
        // a2 (Canada, London, …) vs s1 (Canada, London, Air Show): both
        // shared attrs identical ⇒ 1.0.
        assert_eq!(s.sim(&db, TupleId(4), TupleId(6)), 1.0);
        // a1 (Toronto) vs s1 (London): City similarity is low; Country is
        // 1.0 ⇒ min < 0.5.
        assert!(s.sim(&db, TupleId(3), TupleId(6)) < 0.5);
        // s2 has a null City: against a1 the City similarity is 0.
        assert_eq!(s.sim(&db, TupleId(3), TupleId(7)), 0.0);
    }

    #[test]
    fn table_sim_is_symmetric() {
        let db = tourist_database();
        let mut s = TableSim::new(ExactSim);
        s.set(TupleId(0), TupleId(3), 0.8);
        assert_eq!(s.sim(&db, TupleId(0), TupleId(3)), 0.8);
        assert_eq!(s.sim(&db, TupleId(3), TupleId(0)), 0.8);
        // Fallback for unlisted pairs.
        assert_eq!(s.sim(&db, TupleId(0), TupleId(4)), 1.0);
    }
}
