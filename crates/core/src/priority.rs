//! `PRIORITYINCREMENTALFD` (Fig. 3 of the paper): the full disjunction in
//! ranking order, for monotonically c-determined ranking functions.
//!
//! Differences from `INCREMENTALFD`, following the paper:
//!
//! * there are `n` lists `Incomplete_i` — priority queues keyed by the
//!   rank of the (partial) tuple set — instead of one FIFO list;
//! * `Incomplete_i` is initialized with **every** JCC tuple set of size at
//!   most `c` containing a tuple from `Ri`, after which mergeable pairs
//!   are unioned to a fixpoint (Fig. 3 lines 3–8); that seeds each queue
//!   with the rank-determining subsets of all results;
//! * each step pops the globally highest-ranked entry (lines 10–15), runs
//!   the `GETNEXTRESULT` body against the *shared* `Complete`, and prints
//!   the extension unless it was printed before (line 17) — a set is
//!   generated once per member tuple, so exact duplicates must be
//!   filtered.
//!
//! Lemma 5.4: the emission order is non-increasing in `f`; Theorem 5.5:
//! the top-k answers arrive in polynomial time in the input and `k`.
//! [`RankedFdIter`] exposes the stream unboundedly; the `.top_k` /
//! `.threshold` (Remark 5.6) bounds are applied by the
//! [`FdQuery`](crate::FdQuery) builder.
//!
//! The iterator can also be restricted to a contiguous *shard* of the
//! seed relations (`RankedFdIter::for_relations`): it then emits, still
//! in rank order, exactly the answers containing a tuple of one of those
//! relations — the per-worker unit of the crate's parallel ranked
//! driver, whose k-way merge reassembles the full ranking.

use crate::incremental::FdConfig;
use crate::jcc::{can_add, extend_to_maximal, maximal_subset_with, try_union};
use crate::lists::{CompleteStore, StoreEngine};
use crate::ranking::MonotoneCDetermined;
use crate::stats::Stats;
use crate::tupleset::TupleSet;
use fd_relational::fxhash::{FxHashMap, FxHashSet};
use fd_relational::storage::Pager;
use fd_relational::{Database, RelId, TupleId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Total-ordered f64 wrapper for heap priorities (ranks are finite;
/// `total_cmp` makes the order total regardless).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct Rank(pub(crate) f64);

impl Eq for Rank {}

impl PartialOrd for Rank {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rank {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A heap entry referencing a queue slot; stale when the slot's
/// generation moved on (merges are increase-key operations, implemented
/// by lazy invalidation).
#[derive(Debug, PartialEq, Eq)]
struct HeapItem {
    rank: Rank,
    /// Fresher generations first among equal ranks.
    gen: u32,
    /// Smaller slots first among equal ranks/generations (deterministic
    /// "ties broken arbitrarily").
    slot: u32,
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        self.rank
            .cmp(&other.rank)
            .then(self.gen.cmp(&other.gen))
            .then(other.slot.cmp(&self.slot))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug)]
struct Entry {
    root: TupleId,
    set: TupleSet,
    gen: u32,
}

/// One `Incomplete_i`: a max-priority queue of partial tuple sets rooted
/// at tuples of `Ri`.
#[derive(Debug)]
struct LazyQueue {
    engine: StoreEngine,
    slots: Vec<Option<Entry>>,
    heap: BinaryHeap<HeapItem>,
    by_root: FxHashMap<TupleId, Vec<u32>>,
}

impl LazyQueue {
    fn new(engine: StoreEngine) -> Self {
        LazyQueue {
            engine,
            slots: Vec::new(),
            heap: BinaryHeap::new(),
            by_root: FxHashMap::default(),
        }
    }

    fn push(&mut self, root: TupleId, set: TupleSet, rank: f64, stats: &mut Stats) {
        stats.heap_pushes += 1;
        let slot = self.slots.len() as u32;
        self.slots.push(Some(Entry { root, set, gen: 0 }));
        if self.engine == StoreEngine::Indexed {
            self.by_root.entry(root).or_default().push(slot);
        }
        self.heap.push(HeapItem {
            rank: Rank(rank),
            gen: 0,
            slot,
        });
    }

    fn item_valid(&self, item: &HeapItem) -> bool {
        matches!(&self.slots[item.slot as usize], Some(e) if e.gen == item.gen)
    }

    /// Rank of the highest valid entry, discarding stale heap items.
    fn peek_rank(&mut self, stats: &mut Stats) -> Option<f64> {
        while let Some(top) = self.heap.peek() {
            if self.item_valid(top) {
                return Some(top.rank.0);
            }
            self.heap.pop();
            stats.heap_pops += 1;
        }
        None
    }

    /// Removes and returns the highest valid entry.
    fn pop(&mut self, stats: &mut Stats) -> Option<(TupleId, TupleSet)> {
        while let Some(item) = self.heap.pop() {
            stats.heap_pops += 1;
            if self.item_valid(&item) {
                let entry = self.slots[item.slot as usize].take().expect("valid slot");
                return Some((entry.root, entry.set));
            }
        }
        None
    }

    /// Fig. 2 lines 14–15 in queue form: merge `t_prime` into an entry
    /// sharing its root, re-ranking it (lazy increase-key). Returns the
    /// merge success.
    fn try_merge(
        &mut self,
        db: &Database,
        root: TupleId,
        t_prime: &TupleSet,
        rank_of: &mut impl FnMut(&TupleSet, &mut Stats) -> f64,
        stats: &mut Stats,
    ) -> bool {
        let candidates: Vec<u32> = match self.engine {
            StoreEngine::Indexed => self.by_root.get(&root).cloned().unwrap_or_default(),
            StoreEngine::Scan => (0..self.slots.len() as u32).collect(),
        };
        for slot in candidates {
            let Some(entry) = &self.slots[slot as usize] else {
                continue;
            };
            stats.incomplete_scans += 1;
            if let Some(u) = try_union(db, &entry.set, t_prime, stats) {
                stats.merges += 1;
                let gen = entry.gen + 1;
                let rank = rank_of(&u, stats);
                self.slots[slot as usize] = Some(Entry { root, set: u, gen });
                self.heap.push(HeapItem {
                    rank: Rank(rank),
                    gen,
                    slot,
                });
                stats.heap_pushes += 1;
                return true;
            }
        }
        false
    }
}

/// Streaming `PRIORITYINCREMENTALFD`: yields `(tuple set, rank)` pairs in
/// non-increasing rank order until the full disjunction is exhausted.
/// Take `k` items for the top-(k, f) problem, or use `take_while` on the
/// rank for the (τ, f)-threshold problem.
pub struct RankedFdIter<'db, F: MonotoneCDetermined> {
    db: &'db Database,
    f: F,
    /// Index of the first seed relation covered by `queues` (0 for the
    /// full run; the shard start for a parallel worker).
    rel_lo: usize,
    queues: Vec<LazyQueue>,
    complete: CompleteStore,
    pager: Option<Pager<'db>>,
    stats: Stats,
}

impl<'db, F: MonotoneCDetermined> RankedFdIter<'db, F> {
    /// Builds the iterator, running the initialization of Fig. 3 lines
    /// 1–8: every JCC tuple set of size ≤ c per relation, merged to a
    /// fixpoint. The cost is `O(sᶜ)`, polynomial for constant `c`.
    ///
    /// The ranking function is taken by value; pass `&f` to keep using a
    /// borrowed one (references implement the ranking traits).
    pub fn new(db: &'db Database, f: F) -> Self {
        Self::with_config(db, f, FdConfig::default())
    }

    /// Builds with an explicit store engine (ablation experiments).
    pub fn with_engine(db: &'db Database, f: F, engine: StoreEngine) -> Self {
        Self::with_config(
            db,
            f,
            FdConfig {
                engine,
                ..FdConfig::default()
            },
        )
    }

    /// Builds with the full execution configuration: `engine` selects the
    /// queue/`Complete` structures, `page_size` switches the candidate
    /// scans of the shared `GETNEXTRESULT` body to block-based execution.
    /// (`init` concerns the n-run batch drivers and does not alter this
    /// single-pass algorithm.)
    pub fn with_config(db: &'db Database, f: F, cfg: FdConfig) -> Self {
        Self::for_relations(db, f, cfg, 0..db.num_relations())
    }

    /// Builds a run restricted to the seed relations `rels` (a contiguous
    /// index range): only the queues `Incomplete_i` for `i ∈ rels` are
    /// seeded, so the stream delivers exactly the answers of
    /// `⋃_{i ∈ rels} FDi(R)`. Extension and candidate scans stay global,
    /// so every emitted set is maximal in the *whole* database. Emission
    /// is *not* globally rank-ordered (an answer's rank witness may live
    /// in another shard's queue); the parallel ranked driver sorts each
    /// shard before merging the shard streams back into the full ranking.
    pub(crate) fn for_relations(
        db: &'db Database,
        f: F,
        cfg: FdConfig,
        rels: std::ops::Range<usize>,
    ) -> Self {
        let mut stats = Stats::new();
        let c = f.c().max(1);
        let rel_lo = rels.start;
        let mut queues = Vec::with_capacity(rels.len());
        for rel_idx in rels {
            let ri = RelId(rel_idx as u16);
            let seeds = enumerate_bounded_jcc_sets(db, ri, c, &mut stats);
            let merged = merge_to_fixpoint(db, seeds, &mut stats);
            let mut q = LazyQueue::new(cfg.engine);
            for (root, set) in merged {
                stats.rank_evals += 1;
                let rank = f.rank(db, &set);
                q.push(root, set, rank, &mut stats);
            }
            queues.push(q);
        }
        RankedFdIter {
            db,
            f,
            rel_lo,
            queues,
            complete: CompleteStore::new(cfg.engine),
            pager: cfg.page_size.map(|ps| Pager::new(db, ps)),
            stats,
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Pages fetched so far (block-based execution only).
    pub fn pages_read(&self) -> u64 {
        self.pager.as_ref().map_or(0, |p| p.stats().pages_read())
    }

    /// Rank of the next answer, without consuming it. `None` when the
    /// stream is exhausted.
    pub fn peek_rank(&mut self) -> Option<f64> {
        let mut best: Option<f64> = None;
        for qi in 0..self.queues.len() {
            if let Some(r) = self.queues[qi].peek_rank(&mut self.stats) {
                best = Some(match best {
                    Some(b) if b >= r => b,
                    _ => r,
                });
            }
        }
        best
    }

    /// One iteration of the loop in Fig. 3 lines 9–17. Returns the next
    /// *printed* answer, skipping re-generated duplicates internally.
    fn step(&mut self) -> Option<(TupleSet, f64)> {
        loop {
            // Lines 10–15: find the queue whose top ranks highest.
            let mut best: Option<(usize, f64)> = None;
            for qi in 0..self.queues.len() {
                if let Some(r) = self.queues[qi].peek_rank(&mut self.stats) {
                    best = Some(match best {
                        Some((bi, br)) if br >= r => (bi, br),
                        _ => (qi, r),
                    });
                }
            }
            let (qi, _) = best?;
            let ri = RelId((self.rel_lo + qi) as u16);
            let (_, set) = self.queues[qi].pop(&mut self.stats)?;

            // GETNEXTRESULT body against the shared Complete. Destructure
            // so the candidate closure can borrow the queues/stores
            // mutably while the ranking function stays shared.
            let set = extend_to_maximal(self.db, set, &mut self.stats);
            let RankedFdIter {
                db,
                f,
                rel_lo: _,
                queues,
                complete,
                pager,
                stats,
            } = self;
            let db: &Database = db;
            let candidate = |tb: TupleId| {
                stats.candidate_scans += 1;
                if set.contains(tb) {
                    return;
                }
                let t_prime = maximal_subset_with(db, &set, tb, stats);
                let Some(new_root) = t_prime.tuple_from(db, ri) else {
                    return;
                };
                if complete.contains_superset(&t_prime, new_root, stats) {
                    return;
                }
                let mut rank_of = |s: &TupleSet, st: &mut Stats| {
                    st.rank_evals += 1;
                    f.rank(db, s)
                };
                if queues[qi].try_merge(db, new_root, &t_prime, &mut rank_of, stats) {
                    return;
                }
                stats.rank_evals += 1;
                let rank = f.rank(db, &t_prime);
                queues[qi].push(new_root, t_prime, rank, stats);
            };
            crate::getnext::scan_candidates(db, pager.as_ref(), candidate);

            // Line 17: print unless this exact set was printed before.
            if self.complete.contains_exact(set.tuples()) {
                continue;
            }
            self.stats.rank_evals += 1;
            let rank = self.f.rank(self.db, &set);
            self.complete.insert(set.clone(), set.tuples());
            self.stats.results += 1;
            return Some((set, rank));
        }
    }
}

impl<F: MonotoneCDetermined> Iterator for RankedFdIter<'_, F> {
    type Item = (TupleSet, f64);

    fn next(&mut self) -> Option<Self::Item> {
        self.step()
    }
}

/// Enumerates every JCC tuple set with at most `c` members that contains
/// a tuple of `ri` (Fig. 3 line 4), by connectivity-preserving growth
/// from each `ri` tuple. Returns `(root, set)` pairs, deduplicated.
fn enumerate_bounded_jcc_sets(
    db: &Database,
    ri: RelId,
    c: usize,
    stats: &mut Stats,
) -> Vec<(TupleId, TupleSet)> {
    let mut out = Vec::new();
    let mut seen: FxHashSet<Box<[TupleId]>> = FxHashSet::default();
    for root in db.tuples_of(ri) {
        let base = TupleSet::singleton(db, root);
        grow(db, root, &base, c, &mut seen, &mut out, stats);
    }
    out
}

fn grow(
    db: &Database,
    root: TupleId,
    set: &TupleSet,
    c: usize,
    seen: &mut FxHashSet<Box<[TupleId]>>,
    out: &mut Vec<(TupleId, TupleSet)>,
    stats: &mut Stats,
) {
    if !seen.insert(set.tuples().into()) {
        return;
    }
    out.push((root, set.clone()));
    if set.len() >= c {
        return;
    }
    // Candidate enumeration via the join-column indexes: union the
    // per-relation probes and sort back into ascending id order, which is
    // exactly the order the former `all_tuples` scan visited. The probe
    // only skips tuples whose bound shared attribute already disagrees
    // with `set`; `can_add` stays the authoritative check.
    let mut candidates: Vec<TupleId> = Vec::new();
    for rel_idx in 0..db.num_relations() {
        candidates.extend(db.probe(RelId(rel_idx as u16), set.bindings()));
    }
    candidates.sort_unstable();
    for t in candidates {
        if set.contains(t) {
            continue;
        }
        if can_add(db, set, t, stats) {
            let grown = crate::jcc::add_tuple(db, set, t);
            grow(db, root, &grown, c, seen, out, stats);
        }
    }
}

/// Fig. 3 lines 5–8: repeatedly replace mergeable pairs by their union.
/// Only sets sharing the same `ri` root can merge (a valid set holds one
/// tuple per relation), so the fixpoint runs per root bucket.
fn merge_to_fixpoint(
    db: &Database,
    seeds: Vec<(TupleId, TupleSet)>,
    stats: &mut Stats,
) -> Vec<(TupleId, TupleSet)> {
    let mut buckets: FxHashMap<TupleId, Vec<TupleSet>> = FxHashMap::default();
    let mut root_order: Vec<TupleId> = Vec::new();
    for (root, set) in seeds {
        let bucket = buckets.entry(root).or_default();
        if bucket.is_empty() {
            root_order.push(root);
        }
        bucket.push(set);
    }
    let mut out = Vec::new();
    for root in root_order {
        let mut sets = buckets.remove(&root).expect("bucket exists");
        'fixpoint: loop {
            for i in 0..sets.len() {
                for j in (i + 1)..sets.len() {
                    if let Some(u) = try_union(db, &sets[i], &sets[j], stats) {
                        stats.merges += 1;
                        sets.swap_remove(j);
                        sets[i] = u;
                        continue 'fixpoint;
                    }
                }
            }
            break;
        }
        for set in sets {
            out.push((root, set));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::FdQuery;
    use crate::ranking::{FMax, FTriple, ImpScores};
    use fd_relational::tourist_database;

    /// The introduction's scenario: tropical > temperate > diverse.
    fn climate_imp(db: &Database) -> ImpScores {
        ImpScores::from_fn(db, |t| match t.0 {
            2 => 3.0, // c3 Bahamas/tropical
            1 => 2.0, // c2 UK/temperate
            0 => 1.0, // c1 Canada/diverse
            _ => 0.0,
        })
    }

    #[test]
    fn ranked_iteration_reverses_table_2_by_climate_preference() {
        let db = tourist_database();
        let imp = climate_imp(&db);
        let f = FMax::new(&imp);
        let ranked: Vec<(String, f64)> = RankedFdIter::new(&db, &f)
            .map(|(s, r)| (s.label(&db), r))
            .collect();
        assert_eq!(ranked.len(), 6);
        // Bahamas first, then the two UK sets, then the Canada sets.
        assert_eq!(ranked[0].0, "{c3, a3}");
        assert_eq!(ranked[0].1, 3.0);
        assert_eq!(ranked[1].1, 2.0);
        assert_eq!(ranked[2].1, 2.0);
        assert!(ranked[1].0.contains("c2") && ranked[2].0.contains("c2"));
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1, "ranks must be non-increasing");
        }
    }

    #[test]
    fn top_k_is_a_prefix_of_the_full_ranking() {
        let db = tourist_database();
        let imp = climate_imp(&db);
        let f = FMax::new(&imp);
        let all: Vec<_> = RankedFdIter::new(&db, &f).collect();
        for k in 0..=all.len() + 2 {
            let got: Vec<_> = RankedFdIter::new(&db, &f).take(k).collect();
            assert_eq!(got.len(), k.min(all.len()));
            for (a, b) in got.iter().zip(all.iter()) {
                assert_eq!(a.1, b.1);
            }
        }
    }

    #[test]
    fn ranked_results_equal_unranked_full_disjunction() {
        let db = tourist_database();
        let imp = climate_imp(&db);
        let f = FMax::new(&imp);
        let mut ranked: Vec<Vec<TupleId>> = RankedFdIter::new(&db, &f)
            .map(|(s, _)| s.tuples().to_vec())
            .collect();
        ranked.sort();
        let mut plain: Vec<Vec<TupleId>> = FdQuery::over(&db)
            .run()
            .unwrap()
            .into_sets()
            .into_iter()
            .map(|s| s.tuples().to_vec())
            .collect();
        plain.sort();
        assert_eq!(ranked, plain);
    }

    #[test]
    fn threshold_returns_exactly_the_answers_above_tau() {
        let db = tourist_database();
        let imp = climate_imp(&db);
        let f = FMax::new(&imp);
        let run = |tau: f64| {
            FdQuery::over(&db)
                .ranked(&f)
                .threshold(tau)
                .run()
                .unwrap()
                .into_ranked()
                .unwrap()
        };
        let got = run(2.0);
        assert_eq!(got.len(), 3); // {c3,a3}, {c2,s3}, {c2,s4}
        assert!(got.iter().all(|(_, r)| *r >= 2.0));

        assert_eq!(run(0.5).len(), 6);
        assert_eq!(run(99.0).len(), 0);
    }

    #[test]
    fn sharded_runs_partition_the_ranked_stream() {
        let db = tourist_database();
        let imp = climate_imp(&db);
        let f = FMax::new(&imp);
        let full: Vec<Vec<TupleId>> = RankedFdIter::new(&db, &f)
            .map(|(s, _)| s.tuples().to_vec())
            .collect();
        // Each shard emits exactly the answers containing a tuple of one
        // of its relations (order is the merge's job); their union is
        // the full disjunction.
        let mut union: Vec<Vec<TupleId>> = Vec::new();
        for (lo, hi) in [(0usize, 1usize), (1, 3)] {
            let shard: Vec<(TupleSet, f64)> =
                RankedFdIter::for_relations(&db, &f, FdConfig::default(), lo..hi).collect();
            for (s, _) in &shard {
                assert!(
                    (lo..hi).any(|r| s.tuple_from(&db, RelId(r as u16)).is_some()),
                    "{} outside shard {lo}..{hi}",
                    s.label(&db)
                );
            }
            union.extend(shard.into_iter().map(|(s, _)| s.tuples().to_vec()));
        }
        union.sort();
        union.dedup();
        let mut want = full;
        want.sort();
        assert_eq!(union, want);
    }

    #[test]
    fn ftriple_ranking_is_also_ordered() {
        let db = tourist_database();
        let imp = ImpScores::from_fn(&db, |t| 1.0 + (t.0 % 3) as f64);
        let f = FTriple::new(&imp);
        let ranked: Vec<f64> = RankedFdIter::new(&db, &f).map(|(_, r)| r).collect();
        assert_eq!(ranked.len(), 6);
        for w in ranked.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn both_engines_agree_on_ranked_output() {
        let db = tourist_database();
        let imp = climate_imp(&db);
        let f = FMax::new(&imp);
        let a: Vec<_> = RankedFdIter::with_engine(&db, &f, StoreEngine::Scan)
            .map(|(s, r)| (s.tuples().to_vec(), r))
            .collect();
        let b: Vec<_> = RankedFdIter::with_engine(&db, &f, StoreEngine::Indexed)
            .map(|(s, r)| (s.tuples().to_vec(), r))
            .collect();
        // Rank sequences must match; tie order may differ between engines.
        let ranks = |v: &Vec<(Vec<TupleId>, f64)>| v.iter().map(|x| x.1).collect::<Vec<_>>();
        assert_eq!(ranks(&a), ranks(&b));
        let mut sa = a.clone();
        sa.sort_by(|x, y| x.0.cmp(&y.0));
        let mut sb = b.clone();
        sb.sort_by(|x, y| x.0.cmp(&y.0));
        assert_eq!(sa, sb);
    }

    #[test]
    fn enumeration_covers_all_small_jcc_sets() {
        let db = tourist_database();
        let mut stats = Stats::new();
        let sets = enumerate_bounded_jcc_sets(&db, RelId(0), 2, &mut stats);
        // Size-1: {c1},{c2},{c3}. Size-2 containing a Climates tuple:
        // {c1,a1},{c1,a2},{c1,s1},{c1,s2},{c2,s3},{c2,s4},{c3,a3}.
        assert_eq!(sets.len(), 10);
        assert!(sets.iter().all(|(root, s)| s.contains(*root)));
    }

    #[test]
    fn merge_fixpoint_respects_roots() {
        let db = tourist_database();
        let mut stats = Stats::new();
        let seeds = enumerate_bounded_jcc_sets(&db, RelId(0), 2, &mut stats);
        let merged = merge_to_fixpoint(&db, seeds, &mut stats);
        // {c1,a2} and {c1,s1} merge into {c1,a2,s1}; no cross-root merges.
        assert!(merged
            .iter()
            .any(|(_, s)| s.tuples() == [TupleId(0), TupleId(4), TupleId(6)]));
        for (root, set) in &merged {
            assert!(set.contains(*root));
        }
    }
}
