//! Durability: snapshots, a write-ahead log, and crash recovery.
//!
//! The paper's incremental maintenance is exactly what makes a
//! *persistent* full-disjunction service cheap: instead of recomputing
//! `FD(R)` from scratch after a restart, a session reloads the last
//! [snapshot](Store::write_snapshot) and replays the tail of committed
//! [`DeltaBatch`]es through the same one-pass `delta_batch` machinery.
//! This module owns the on-disk primitives; the session integration
//! ([`FdSession::open`](crate::FdSession::open) /
//! [`persist_to`](crate::FdSession::persist_to)) lives in
//! [`session`](crate::session).
//!
//! A data directory holds two files:
//!
//! * `snapshot.fd` — the database (**id-exact**: base rows, dynamic
//!   inserts, tombstones) plus the materialized result sets as member-id
//!   lists, behind a versioned, CRC-checked header. Written atomically
//!   (temp file + rename).
//! * `wal.fd` — an append-only log of committed batches, one
//!   seq-, length- and CRC-framed record per commit. A torn final
//!   record (a crash mid-append) is detected on open and truncated with
//!   a logged warning — never a panic. A damaged record with intact
//!   records *after* it is a different animal — bit rot over
//!   acknowledged commits — and refuses to open rather than silently
//!   dropping them.
//!
//! Each WAL record carries the commit's global sequence number and the
//! snapshot records the sequence it folds in, so recovery replays
//! exactly the records the snapshot does not cover. That makes the
//! checkpoint pair (write snapshot, then truncate the log) crash-safe
//! without being atomic: a crash between the two leaves a fresh
//! snapshot plus a stale log, and every stale record is skipped by its
//! sequence number instead of being double-applied.
//!
//! Everything is plain text built from [`textio`](fd_relational::textio)
//! tokens, so a data directory is inspectable with `cat` and the value
//! round-trip guarantees are inherited from the wire format.

use fd_relational::textio::{format_row, format_value, parse_row, parse_value};
use fd_relational::{Database, DatabaseBuilder, Delta, DeltaBatch, RelId, TupleId, Value};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::str::FromStr;

/// Snapshot file name inside a data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.fd";
/// Write-ahead-log file name inside a data directory.
pub const WAL_FILE: &str = "wal.fd";
/// Snapshot format version this build writes and reads. `v2` added the
/// intern-catalog (`syms`) section; `v1` files (no catalog) are rejected
/// with [`StoreError::UnsupportedVersion`] rather than guessed at.
pub const SNAPSHOT_VERSION: &str = "v2";

/// How eagerly WAL appends reach stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fsync` (data + metadata) after every record — survives power loss.
    Always,
    /// `fdatasync` after every record (one record *is* one commit) —
    /// survives process crashes and, on most filesystems, power loss,
    /// without the metadata flush. The default.
    #[default]
    OnCommit,
    /// Buffered writes only — survives process crashes (the kernel holds
    /// the pages), not power loss. The fast lane for bulk loads.
    Off,
}

impl FromStr for FsyncPolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "on-commit" => Ok(FsyncPolicy::OnCommit),
            "off" => Ok(FsyncPolicy::Off),
            other => Err(format!(
                "unknown fsync policy '{other}' (expected always, on-commit or off)"
            )),
        }
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::OnCommit => "on-commit",
            FsyncPolicy::Off => "off",
        })
    }
}

/// Why a storage operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// An OS-level I/O failure.
    Io {
        /// What the store was doing.
        op: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A file failed validation (bad header, checksum, or structure).
    Corrupt {
        /// What was wrong.
        what: String,
    },
    /// The snapshot is intact but carries a format version this build
    /// does not read (e.g. a pre-interning `v1` file).
    UnsupportedVersion {
        /// The version token found in the snapshot header.
        found: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, source } => write!(f, "{op}: {source}"),
            StoreError::Corrupt { what } => write!(f, "corrupt store: {what}"),
            StoreError::UnsupportedVersion { found } => write!(
                f,
                "snapshot format {found:?} is not supported (this build reads \
                 {SNAPSHOT_VERSION}); re-materialize the store to upgrade"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Corrupt { .. } | StoreError::UnsupportedVersion { .. } => None,
        }
    }
}

fn io_err(op: impl Into<String>) -> impl FnOnce(std::io::Error) -> StoreError {
    let op = op.into();
    move |source| StoreError::Io { op, source }
}

fn corrupt(what: impl Into<String>) -> StoreError {
    StoreError::Corrupt { what: what.into() }
}

/// Makes a directory-entry change (a rename or file creation) durable.
/// `sync_all` on the file covers its *contents*; the entry pointing at
/// it lives in the directory, which needs its own fsync or a power loss
/// can undo the rename while later writes survive.
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        // Directories cannot be opened for syncing here; the rename is
        // as durable as the platform makes it.
        let _ = dir;
        Ok(())
    }
}

/// CRC-32 (IEEE 802.3 polynomial, the zlib/`cksum -o3` variant) over a
/// byte slice. Hand-rolled: the build is offline, no `crc32fast` here.
pub fn crc32(bytes: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut t = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 == 1 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    }
    const TABLE: [u32; 256] = table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// A decoded snapshot: the reconstructed database (ids, tombstones and
/// dynamic inserts exactly as persisted) plus the materialized results
/// as member-id lists and the commit sequence number the snapshot folds
/// in.
#[derive(Debug)]
pub struct Snapshot {
    /// Committed batches folded into this snapshot.
    pub seq: u64,
    /// The database, id-exact.
    pub db: Database,
    /// Each materialized result's member tuple ids, ascending.
    pub results: Vec<Vec<TupleId>>,
}

/// A durable data directory: one snapshot plus one write-ahead log.
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
}

impl Store {
    /// Opens (creating the directory if needed) a data directory.
    pub fn create(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(io_err(format!("create {}", dir.display())))?;
        Ok(Store { dir })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the snapshot file.
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join(SNAPSHOT_FILE)
    }

    /// Path of the write-ahead log.
    pub fn wal_path(&self) -> PathBuf {
        self.dir.join(WAL_FILE)
    }

    /// Does the directory hold a snapshot to recover from?
    pub fn has_snapshot(&self) -> bool {
        self.snapshot_path().is_file()
    }

    /// Writes a snapshot of `db` + `results` atomically: temp file +
    /// `sync_all` + rename, then an fsync of the data directory so the
    /// rename itself survives power loss. Returns the body size in
    /// bytes.
    pub fn write_snapshot(
        &self,
        db: &Database,
        results: &[Vec<TupleId>],
        seq: u64,
    ) -> Result<u64, StoreError> {
        let body = encode_snapshot(db, results, seq);
        let header = format!(
            "fdsnap {SNAPSHOT_VERSION} len={} crc={:08x}\n",
            body.len(),
            crc32(&body)
        );
        let tmp = self.dir.join(".snapshot.fd.tmp");
        let path = self.snapshot_path();
        let mut f = File::create(&tmp).map_err(io_err(format!("create {}", tmp.display())))?;
        f.write_all(header.as_bytes())
            .and_then(|()| f.write_all(&body))
            .and_then(|()| f.sync_all())
            .map_err(io_err(format!("write {}", tmp.display())))?;
        drop(f);
        std::fs::rename(&tmp, &path).map_err(io_err(format!(
            "rename {} -> {}",
            tmp.display(),
            path.display()
        )))?;
        sync_dir(&self.dir).map_err(io_err(format!("sync {}", self.dir.display())))?;
        Ok(body.len() as u64)
    }

    /// Loads and validates the snapshot, reconstructing the database
    /// id-exactly (every [`TupleId`] means what it meant when written).
    pub fn read_snapshot(&self) -> Result<Snapshot, StoreError> {
        let path = self.snapshot_path();
        let raw = std::fs::read(&path).map_err(io_err(format!("read {}", path.display())))?;
        let nl = raw
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| corrupt("snapshot: missing header line"))?;
        let header =
            std::str::from_utf8(&raw[..nl]).map_err(|_| corrupt("snapshot: non-utf8 header"))?;
        let mut parts = header.split_whitespace();
        if parts.next() != Some("fdsnap") {
            return Err(corrupt(format!("snapshot: bad magic in header {header:?}")));
        }
        match parts.next() {
            Some(v) if v == SNAPSHOT_VERSION => {}
            Some(v) => {
                return Err(StoreError::UnsupportedVersion {
                    found: v.to_owned(),
                })
            }
            None => return Err(corrupt(format!("snapshot: bad magic in header {header:?}"))),
        }
        let len: usize = parts
            .next()
            .and_then(|p| p.strip_prefix("len="))
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| corrupt("snapshot: bad len field"))?;
        let crc: u32 = parts
            .next()
            .and_then(|p| p.strip_prefix("crc="))
            .and_then(|v| u32::from_str_radix(v, 16).ok())
            .ok_or_else(|| corrupt("snapshot: bad crc field"))?;
        let body = &raw[nl + 1..];
        if body.len() != len {
            return Err(corrupt(format!(
                "snapshot: body is {} bytes, header says {len}",
                body.len()
            )));
        }
        if crc32(body) != crc {
            return Err(corrupt("snapshot: checksum mismatch"));
        }
        let body = std::str::from_utf8(body).map_err(|_| corrupt("snapshot: non-utf8 body"))?;
        decode_snapshot(body)
    }
}

fn encode_snapshot(db: &Database, results: &[Vec<TupleId>], seq: u64) -> Vec<u8> {
    let mut out = String::new();
    out.push_str(&format!("seq {seq}\n"));
    // The intern catalog, ascending by symbol id, before any data rows:
    // a fresh process decoding the snapshot re-interns these texts in
    // order and so allocates the writer's symbols — recovery is
    // symbol-exact, not just value-exact. The body CRC covers it like
    // every other section.
    let syms = fd_relational::interner::catalog();
    out.push_str(&format!("syms {}\n", syms.len()));
    for s in &syms {
        out.push_str(&format!(
            "sym {} {}\n",
            s.sym(),
            format_value(&Value::Str(s.clone()))
        ));
    }
    out.push_str(&format!("relations {}\n", db.num_relations()));
    for rel in db.relations() {
        let mut header: Vec<Value> = vec![Value::str(rel.name())];
        header.extend(
            rel.schema()
                .attrs()
                .iter()
                .map(|&a| Value::str(db.attr_name(a))),
        );
        out.push_str(&format!("rel {}\n", format_row(&header)));
        let band = db.base_tuples(rel.id());
        out.push_str(&format!("rows {}\n", band.len()));
        for raw in band {
            // Tombstoned rows too: their data is retained and their slot
            // keeps every later id meaningful.
            out.push_str(&format!(
                "row {}\n",
                format_row(db.tuple_values(TupleId(raw)))
            ));
        }
    }
    let base = db.base_tuple_count();
    let bound = db.tuple_id_bound();
    out.push_str(&format!("overflow {}\n", bound - base));
    for raw in base..bound {
        // Ascending id order == original insertion order, so replaying
        // `insert_tuple` re-allocates the identical ids.
        let (rel, _) = db.locate(TupleId(raw));
        let mut line: Vec<Value> = vec![Value::Int(rel.index() as i64)];
        line.extend(db.tuple_values(TupleId(raw)).iter().cloned());
        out.push_str(&format!("add {}\n", format_row(&line)));
    }
    let dead: Vec<u32> = (0..bound)
        .filter(|&raw| !db.is_live(TupleId(raw)))
        .collect();
    out.push_str(&format!("dead {}\n", dead.len()));
    for raw in dead {
        out.push_str(&format!("gone {raw}\n"));
    }
    out.push_str(&format!("results {}\n", results.len()));
    for set in results {
        out.push_str("set");
        for t in set {
            out.push_str(&format!(" {}", t.0));
        }
        out.push('\n');
    }
    out.push_str("end\n");
    out.into_bytes()
}

fn decode_snapshot(body: &str) -> Result<Snapshot, StoreError> {
    let mut lines = body.lines();
    let mut next = |tag: &str| -> Result<String, StoreError> {
        let line = lines
            .next()
            .ok_or_else(|| corrupt(format!("snapshot: unexpected end before '{tag}'")))?;
        line.strip_prefix(tag)
            .map(|rest| rest.trim_start().to_owned())
            .ok_or_else(|| corrupt(format!("snapshot: expected '{tag} …', got {line:?}")))
    };
    let seq: u64 = next("seq")?
        .parse()
        .map_err(|_| corrupt("snapshot: bad seq"))?;
    let num_syms: usize = next("syms")?
        .parse()
        .map_err(|_| corrupt("snapshot: bad symbol count"))?;
    for i in 0..num_syms {
        let line = next("sym")?;
        let (id, tok) = line
            .split_once(' ')
            .ok_or_else(|| corrupt(format!("snapshot: bad symbol line {line:?}")))?;
        let id: usize = id
            .parse()
            .map_err(|_| corrupt(format!("snapshot: bad symbol id {id:?}")))?;
        if id != i {
            return Err(corrupt(format!(
                "snapshot: symbol ids are not dense-ascending (got {id} at position {i})"
            )));
        }
        // parse_value interns as a side effect — exactly the point: in a
        // fresh process this allocates symbol `i`, reproducing the
        // writer's id space before any data row is parsed.
        match parse_value(tok) {
            Value::Str(_) => {}
            other => {
                return Err(corrupt(format!(
                    "snapshot: symbol {i} is not a string token: {other:?}"
                )))
            }
        }
    }
    let num_rels: usize = next("relations")?
        .parse()
        .map_err(|_| corrupt("snapshot: bad relation count"))?;

    let mut builder = DatabaseBuilder::new();
    for _ in 0..num_rels {
        let header = parse_row(&next("rel")?);
        let mut names = Vec::with_capacity(header.len());
        for v in &header {
            match v {
                Value::Str(s) => names.push(s.to_string()),
                other => {
                    return Err(corrupt(format!(
                        "snapshot: non-string name token {other:?}"
                    )))
                }
            }
        }
        let (name, attrs) = names
            .split_first()
            .ok_or_else(|| corrupt("snapshot: empty relation header"))?;
        let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
        let mut rb = builder.relation(name, &attr_refs);
        let rows: usize = next("rows")?
            .parse()
            .map_err(|_| corrupt("snapshot: bad row count"))?;
        for _ in 0..rows {
            rb.row_values(parse_row(&next("row")?));
        }
    }
    let mut db = builder
        .build()
        .map_err(|e| corrupt(format!("snapshot: rebuild rejected: {e}")))?;

    let overflow: usize = next("overflow")?
        .parse()
        .map_err(|_| corrupt("snapshot: bad overflow count"))?;
    for _ in 0..overflow {
        let mut values = parse_row(&next("add")?);
        if values.is_empty() {
            return Err(corrupt("snapshot: empty overflow entry"));
        }
        let rel = match values.remove(0) {
            Value::Int(i) if (0..u64::from(u16::MAX)).contains(&(i as u64)) => RelId(i as u16),
            other => {
                return Err(corrupt(format!(
                    "snapshot: bad overflow relation {other:?}"
                )))
            }
        };
        db.insert_tuple(rel, values)
            .map_err(|e| corrupt(format!("snapshot: overflow replay rejected: {e}")))?;
    }
    let dead: usize = next("dead")?
        .parse()
        .map_err(|_| corrupt("snapshot: bad dead count"))?;
    for _ in 0..dead {
        let raw: u32 = next("gone")?
            .parse()
            .map_err(|_| corrupt("snapshot: bad dead id"))?;
        db.remove_tuple(TupleId(raw))
            .map_err(|e| corrupt(format!("snapshot: tombstone replay rejected: {e}")))?;
    }

    let num_results: usize = next("results")?
        .parse()
        .map_err(|_| corrupt("snapshot: bad result count"))?;
    let mut results = Vec::with_capacity(num_results);
    for _ in 0..num_results {
        let ids = next("set")?;
        let mut set = Vec::new();
        for tok in ids.split_whitespace() {
            let raw: u32 = tok
                .parse()
                .map_err(|_| corrupt(format!("snapshot: bad member id {tok:?}")))?;
            if !db.is_live(TupleId(raw)) {
                return Err(corrupt(format!(
                    "snapshot: result member t{raw} is not live"
                )));
            }
            set.push(TupleId(raw));
        }
        if set.is_empty() {
            return Err(corrupt("snapshot: empty result set"));
        }
        results.push(set);
    }
    next("end")?;
    Ok(Snapshot { seq, db, results })
}

/// One intact WAL record: a committed batch and its global commit
/// sequence number (the snapshot stores the sequence it folds in, so
/// recovery replays only records with `seq > snapshot.seq`).
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// The commit's position in the session's global history, 1-based.
    pub seq: u64,
    /// The committed batch.
    pub batch: DeltaBatch,
}

/// What [`Wal::open`] found on disk.
#[derive(Debug)]
pub struct WalOpen {
    /// The log, positioned for appending.
    pub wal: Wal,
    /// Every intact record, oldest first, with consecutive sequence
    /// numbers (a gap fails the open as corruption).
    pub records: Vec<WalRecord>,
    /// Bytes cut off the end (a torn final record), if any.
    pub truncated: Option<u64>,
}

/// The append-only write-ahead log: one framed record per committed
/// [`DeltaBatch`].
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    bytes: u64,
    records: u64,
    /// Sequence number of the newest record on disk (0 = empty log);
    /// appends must move strictly forward.
    last_seq: u64,
}

impl Wal {
    /// Opens (creating if missing) the log, scanning every record. A
    /// torn *final* record — short payload or checksum mismatch with
    /// nothing decodable after it, the signature of a crash mid-append —
    /// is truncated away with a logged warning; anything before it is
    /// returned for replay. A damaged record *followed by* intact
    /// records is mid-file corruption over acknowledged commits and
    /// fails the open instead of silently dropping them.
    pub fn open(path: impl AsRef<Path>) -> Result<WalOpen, StoreError> {
        let path = path.as_ref().to_path_buf();
        let created = !path.exists();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(io_err(format!("open {}", path.display())))?;
        if created {
            if let Some(dir) = path.parent() {
                sync_dir(dir).map_err(io_err(format!("sync {}", dir.display())))?;
            }
        }
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)
            .map_err(io_err(format!("read {}", path.display())))?;

        let mut records: Vec<WalRecord> = Vec::new();
        let mut good = 0usize;
        let mut torn: Option<String> = None;
        let mut offset = 0usize;
        while offset < raw.len() {
            match scan_record(&raw[offset..]) {
                Ok((record, consumed)) => {
                    if let Some(last) = records.last() {
                        if record.seq != last.seq + 1 {
                            return Err(corrupt(format!(
                                "{}: record seq jumps from {} to {} — the log lost commits",
                                path.display(),
                                last.seq,
                                record.seq
                            )));
                        }
                    }
                    records.push(record);
                    offset += consumed;
                    good = offset;
                }
                Err(why) => {
                    if intact_record_follows(&raw[offset..]) {
                        return Err(corrupt(format!(
                            "{}: record {} is damaged but intact records follow — refusing to \
                             truncate acknowledged commits (repair or remove the file manually): {why}",
                            path.display(),
                            records.len() + 1,
                        )));
                    }
                    torn = Some(why);
                    break;
                }
            }
        }
        let truncated = if torn.is_some() {
            Some((raw.len() - good) as u64)
        } else {
            None
        };
        // stderr directly: WAL repair happens during recovery, before
        // any event log exists to report through.
        #[allow(clippy::print_stderr)]
        if let (Some(why), Some(cut)) = (&torn, truncated) {
            eprintln!(
                "fd store: warning: truncating torn WAL tail of {} ({cut} bytes after record {}): {why}",
                path.display(),
                records.len(),
            );
            file.set_len(good as u64)
                .map_err(io_err(format!("truncate {}", path.display())))?;
            file.sync_all()
                .map_err(io_err(format!("sync {}", path.display())))?;
        }
        file.seek(SeekFrom::Start(good as u64))
            .map_err(io_err(format!("seek {}", path.display())))?;
        let last_seq = records.last().map_or(0, |r| r.seq);
        let num = records.len() as u64;
        Ok(WalOpen {
            wal: Wal {
                file,
                path,
                bytes: good as u64,
                records: num,
                last_seq,
            },
            records,
            truncated,
        })
    }

    /// Current log size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of records in the log.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Sequence number of the newest record on disk (0 = empty log).
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// Appends one committed batch as a framed record stamped with its
    /// global commit sequence number, then makes it as durable as
    /// `policy` asks. Returns the bytes written. `seq` must move
    /// strictly forward from the last record on disk.
    pub fn append(
        &mut self,
        seq: u64,
        batch: &DeltaBatch,
        policy: FsyncPolicy,
    ) -> Result<u64, StoreError> {
        if seq <= self.last_seq {
            return Err(corrupt(format!(
                "{}: append seq {seq} does not advance past record {}",
                self.path.display(),
                self.last_seq
            )));
        }
        let payload = encode_batch(batch);
        let header = format!("rec {seq} {} {:08x}\n", payload.len(), crc32(&payload));
        let write = |f: &mut File| -> std::io::Result<()> {
            f.write_all(header.as_bytes())?;
            f.write_all(&payload)?;
            f.flush()?;
            match policy {
                FsyncPolicy::Always => f.sync_all(),
                FsyncPolicy::OnCommit => f.sync_data(),
                FsyncPolicy::Off => Ok(()),
            }
        };
        write(&mut self.file).map_err(io_err(format!("append {}", self.path.display())))?;
        let wrote = (header.len() + payload.len()) as u64;
        self.bytes += wrote;
        self.records += 1;
        self.last_seq = seq;
        Ok(wrote)
    }

    /// Empties the log (after a snapshot folded its records in) and
    /// syncs the truncation.
    pub fn truncate(&mut self) -> Result<(), StoreError> {
        self.file
            .set_len(0)
            .and_then(|()| self.file.seek(SeekFrom::Start(0)).map(|_| ()))
            .and_then(|()| self.file.sync_all())
            .map_err(io_err(format!("truncate {}", self.path.display())))?;
        self.bytes = 0;
        self.records = 0;
        self.last_seq = 0;
        Ok(())
    }
}

/// Parses one record at the head of `raw`, returning the decoded record
/// and the bytes consumed, or a reason the record is torn/invalid.
fn scan_record(raw: &[u8]) -> Result<(WalRecord, usize), String> {
    let nl = raw
        .iter()
        .position(|&b| b == b'\n')
        .ok_or("record header has no newline")?;
    let header =
        std::str::from_utf8(&raw[..nl]).map_err(|_| "record header is not utf8".to_owned())?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("rec") {
        return Err(format!("bad record magic in {header:?}"));
    }
    let seq: u64 = parts
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("bad record seq in {header:?}"))?;
    let len: usize = parts
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("bad record length in {header:?}"))?;
    let crc: u32 = parts
        .next()
        .and_then(|v| u32::from_str_radix(v, 16).ok())
        .ok_or_else(|| format!("bad record crc in {header:?}"))?;
    let start = nl + 1;
    let payload = raw
        .get(start..start + len)
        .ok_or_else(|| format!("record payload short: {} of {len} bytes", raw.len() - start))?;
    if crc32(payload) != crc {
        return Err("record checksum mismatch".to_owned());
    }
    let payload =
        std::str::from_utf8(payload).map_err(|_| "record payload is not utf8".to_owned())?;
    let batch = decode_batch(payload)?;
    Ok((WalRecord { seq, batch }, start + len))
}

/// After a scan failure, is there still an intact record further along?
/// A torn final record (crash mid-append) is followed by nothing
/// decodable; mid-file bit rot leaves the later, acknowledged records
/// intact, and truncating those would silently lose commits. Candidate
/// positions are line starts — a record header always follows a
/// newline — and each must pass the full frame check (CRC included), so
/// payload text cannot masquerade as a surviving record.
fn intact_record_follows(raw: &[u8]) -> bool {
    let mut pos = 0usize;
    while let Some(nl) = raw[pos..].iter().position(|&b| b == b'\n') {
        pos += nl + 1;
        if pos >= raw.len() {
            return false;
        }
        if raw[pos..].starts_with(b"rec ") && scan_record(&raw[pos..]).is_ok() {
            return true;
        }
    }
    false
}

fn encode_batch(batch: &DeltaBatch) -> Vec<u8> {
    let mut out = String::new();
    for delta in batch.deltas() {
        match delta {
            Delta::Insert { rel, values } => {
                let mut line: Vec<Value> = vec![Value::Int(rel.index() as i64)];
                line.extend(values.iter().cloned());
                out.push_str(&format!("i {}\n", format_row(&line)));
            }
            Delta::Delete { tuple } => out.push_str(&format!("d {}\n", tuple.0)),
        }
    }
    out.into_bytes()
}

fn decode_batch(payload: &str) -> Result<DeltaBatch, String> {
    let mut batch = DeltaBatch::new();
    for line in payload.lines() {
        if let Some(rest) = line.strip_prefix("i ") {
            let mut values = parse_row(rest);
            if values.is_empty() {
                return Err("empty insert record".to_owned());
            }
            let rel = match values.remove(0) {
                Value::Int(i) if (0..i64::from(u16::MAX)).contains(&i) => RelId(i as u16),
                other => return Err(format!("bad insert relation {other:?}")),
            };
            batch.insert(rel, values);
        } else if let Some(rest) = line.strip_prefix('d') {
            let raw: u32 = rest
                .trim()
                .parse()
                .map_err(|_| format!("bad delete id {rest:?}"))?;
            batch.delete(TupleId(raw));
        } else {
            return Err(format!("unknown delta line {line:?}"));
        }
    }
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_relational::tourist_database;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fd-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The standard check vector for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fsync_policy_parses_and_displays() {
        for p in [FsyncPolicy::Always, FsyncPolicy::OnCommit, FsyncPolicy::Off] {
            assert_eq!(p.to_string().parse::<FsyncPolicy>().unwrap(), p);
        }
        assert!("sometimes".parse::<FsyncPolicy>().is_err());
    }

    #[test]
    fn snapshot_round_trips_ids_tombstones_and_results() {
        let dir = temp_dir("snap");
        let mut db = tourist_database();
        let rel = RelId(0);
        let t = db
            .insert_tuple(rel, vec![Value::str("Chile"), Value::str("arid")])
            .unwrap();
        db.remove_tuple(TupleId(0)).unwrap();
        let results = vec![vec![TupleId(3)], vec![t, TupleId(6)]];

        let store = Store::create(&dir).unwrap();
        store.write_snapshot(&db, &results, 7).unwrap();
        let snap = store.read_snapshot().unwrap();

        assert_eq!(snap.seq, 7);
        assert_eq!(snap.results, results);
        assert_eq!(snap.db.tuple_id_bound(), db.tuple_id_bound());
        assert_eq!(snap.db.base_tuple_count(), db.base_tuple_count());
        for raw in 0..db.tuple_id_bound() {
            let t = TupleId(raw);
            assert_eq!(snap.db.is_live(t), db.is_live(t), "liveness of t{raw}");
            assert_eq!(
                snap.db.tuple_values(t),
                db.tuple_values(t),
                "values of t{raw}"
            );
            assert_eq!(snap.db.rel_of(t), db.rel_of(t), "relation of t{raw}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_carries_the_intern_catalog() {
        let dir = temp_dir("syms");
        let db = tourist_database();
        let store = Store::create(&dir).unwrap();
        store.write_snapshot(&db, &[], 0).unwrap();
        let raw = String::from_utf8(std::fs::read(store.snapshot_path()).unwrap()).unwrap();
        assert!(raw.starts_with("fdsnap v2 "), "header: {raw:.40}");
        assert!(raw.contains("\nsyms "), "missing catalog section");
        assert!(raw.contains("\nsym 0 "), "catalog is not zero-based");
        // Every string in the database appears in the persisted catalog.
        let canada = format!(" {}\n", format_value(&Value::str("Canada")));
        assert!(raw.contains(&canada), "catalog lacks a live db string");
        let snap = store.read_snapshot().unwrap();
        assert_eq!(snap.db.num_tuples(), db.num_tuples());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pre_catalog_v1_snapshot_is_rejected_with_a_versioned_error() {
        let dir = temp_dir("v1");
        let db = tourist_database();
        let store = Store::create(&dir).unwrap();
        store.write_snapshot(&db, &[], 0).unwrap();
        // Rewrite the header's version token only; body and CRC intact.
        let raw = String::from_utf8(std::fs::read(store.snapshot_path()).unwrap()).unwrap();
        let downgraded = raw.replacen("fdsnap v2 ", "fdsnap v1 ", 1);
        std::fs::write(store.snapshot_path(), downgraded).unwrap();
        match store.read_snapshot() {
            Err(StoreError::UnsupportedVersion { found }) => assert_eq!(found, "v1"),
            other => panic!("expected a versioned rejection, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_checksum_mismatch_is_detected() {
        let dir = temp_dir("snapcrc");
        let db = tourist_database();
        let store = Store::create(&dir).unwrap();
        store.write_snapshot(&db, &[], 0).unwrap();
        let path = store.snapshot_path();
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 2;
        raw[last] ^= 0x01;
        std::fs::write(&path, &raw).unwrap();
        assert!(matches!(
            store.read_snapshot(),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_round_trips_batches() {
        let dir = temp_dir("wal");
        let path = dir.join(WAL_FILE);
        let mut batch = DeltaBatch::new();
        batch
            .insert(RelId(0), vec![Value::str("Chile"), Value::Null])
            .insert(
                RelId(2),
                vec![Value::Int(1), Value::float(0.5), Value::Bool(true)],
            )
            .delete(TupleId(4));

        let mut wal = Wal::open(&path).unwrap().wal;
        wal.append(1, &batch, FsyncPolicy::Off).unwrap();
        wal.append(
            2,
            &DeltaBatch::from(Delta::Delete { tuple: TupleId(1) }),
            FsyncPolicy::OnCommit,
        )
        .unwrap();
        assert_eq!(wal.records(), 2);
        assert_eq!(wal.last_seq(), 2);
        drop(wal);

        let opened = Wal::open(&path).unwrap();
        assert!(opened.truncated.is_none());
        assert_eq!(opened.wal.last_seq(), 2);
        assert_eq!(opened.records.len(), 2);
        assert_eq!(opened.records[0], WalRecord { seq: 1, batch });
        assert_eq!(
            opened.records[1],
            WalRecord {
                seq: 2,
                batch: DeltaBatch::from(Delta::Delete { tuple: TupleId(1) })
            }
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_seq_must_advance_and_gaps_fail_the_open() {
        let dir = temp_dir("seq");
        let path = dir.join(WAL_FILE);
        let one = DeltaBatch::from(Delta::Delete { tuple: TupleId(0) });
        let mut wal = Wal::open(&path).unwrap().wal;
        wal.append(1, &one, FsyncPolicy::Off).unwrap();
        // Stale or repeated seqs are rejected before touching the file…
        assert!(matches!(
            wal.append(1, &one, FsyncPolicy::Off),
            Err(StoreError::Corrupt { .. })
        ));
        // …but a forward jump only shows up as corruption on open.
        wal.append(5, &one, FsyncPolicy::Off).unwrap();
        drop(wal);
        assert!(matches!(Wal::open(&path), Err(StoreError::Corrupt { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = temp_dir("torn");
        let path = dir.join(WAL_FILE);
        let mut wal = Wal::open(&path).unwrap().wal;
        let good = DeltaBatch::from(Delta::Delete { tuple: TupleId(0) });
        wal.append(1, &good, FsyncPolicy::Off).unwrap();
        wal.append(
            2,
            &DeltaBatch::from(Delta::Delete { tuple: TupleId(1) }),
            FsyncPolicy::Off,
        )
        .unwrap();
        drop(wal);

        // Chop bytes off the final record: a crash mid-append.
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 3]).unwrap();

        let opened = Wal::open(&path).unwrap();
        assert_eq!(
            opened.records,
            vec![WalRecord {
                seq: 1,
                batch: good.clone()
            }]
        );
        assert!(opened.truncated.is_some());
        // The file is now clean: reopening sees one intact record.
        let reopened = Wal::open(&path).unwrap();
        assert!(reopened.truncated.is_none());
        assert_eq!(
            reopened.records,
            vec![WalRecord {
                seq: 1,
                batch: good
            }]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_crc_in_tail_is_truncated() {
        let dir = temp_dir("badcrc");
        let path = dir.join(WAL_FILE);
        let mut wal = Wal::open(&path).unwrap().wal;
        wal.append(
            1,
            &DeltaBatch::from(Delta::Delete { tuple: TupleId(2) }),
            FsyncPolicy::Off,
        )
        .unwrap();
        drop(wal);
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 2;
        raw[last] ^= 0x40;
        std::fs::write(&path, &raw).unwrap();

        let opened = Wal::open(&path).unwrap();
        assert!(opened.records.is_empty());
        assert!(opened.truncated.is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_file_corruption_with_intact_tail_refuses_to_open() {
        let dir = temp_dir("midrot");
        let path = dir.join(WAL_FILE);
        let mut wal = Wal::open(&path).unwrap().wal;
        wal.append(
            1,
            &DeltaBatch::from(Delta::Delete { tuple: TupleId(0) }),
            FsyncPolicy::Off,
        )
        .unwrap();
        let first_end = wal.bytes() as usize;
        wal.append(
            2,
            &DeltaBatch::from(Delta::Delete { tuple: TupleId(1) }),
            FsyncPolicy::Off,
        )
        .unwrap();
        drop(wal);

        // Bit rot inside the *first* record, second record intact:
        // truncating here would drop an acknowledged commit, so the
        // open must fail instead.
        let mut raw = std::fs::read(&path).unwrap();
        raw[first_end - 2] ^= 0x04;
        std::fs::write(&path, &raw).unwrap();
        match Wal::open(&path) {
            Err(StoreError::Corrupt { what }) => {
                assert!(what.contains("intact records follow"), "got: {what}")
            }
            other => panic!("expected corrupt-store error, got {other:?}"),
        }
        // Nothing was truncated by the refused open.
        assert_eq!(std::fs::read(&path).unwrap(), raw);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_empties_the_log() {
        let dir = temp_dir("trunc");
        let path = dir.join(WAL_FILE);
        let mut wal = Wal::open(&path).unwrap().wal;
        wal.append(
            1,
            &DeltaBatch::from(Delta::Delete { tuple: TupleId(0) }),
            FsyncPolicy::Off,
        )
        .unwrap();
        assert!(wal.bytes() > 0);
        wal.truncate().unwrap();
        assert_eq!(wal.bytes(), 0);
        assert_eq!(wal.last_seq(), 0);
        // A fresh history may restart anywhere forward of zero, e.g. at
        // the seq after the snapshot that emptied the log.
        wal.append(
            2,
            &DeltaBatch::from(Delta::Delete { tuple: TupleId(1) }),
            FsyncPolicy::Off,
        )
        .unwrap();
        drop(wal);
        let opened = Wal::open(&path).unwrap();
        assert_eq!(opened.records.len(), 1);
        assert_eq!(opened.records[0].seq, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
