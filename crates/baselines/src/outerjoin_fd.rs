//! The Rajaraman–Ullman (1996) baseline: full disjunctions by a sequence
//! of binary full outerjoins.
//!
//! Reference \[2\] of the paper showed this works **exactly** for γ-acyclic
//! schemas (and null-free sources — their model has no source nulls). The
//! paper's `INCREMENTALFD` removes both restrictions; this module
//! implements the restricted baseline so benchmarks can compare the two
//! on their common ground, and so tests can document the restriction
//! boundary.

use fd_relational::hypergraph::{connected_ordering, Hypergraph};
use fd_relational::join::DerivedRelation;
use fd_relational::outerjoin::{full_outerjoin, remove_subsumed};
use fd_relational::Database;
use std::fmt;

/// Why the outerjoin baseline refuses a database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OuterjoinFdError {
    /// The schema hypergraph is not γ-acyclic; outerjoin sequences cannot
    /// express the full disjunction (Rajaraman–Ullman 1996).
    NotGammaAcyclic,
    /// The relations do not form a connected graph; no outerjoin ordering
    /// exists.
    Disconnected,
    /// A source relation contains nulls, which \[2\]'s model does not
    /// allow (the paper's Definition 2.1 extension).
    NullsInSource,
    /// The database has been mutated (tombstones/inserts): this baseline
    /// reads relation rows directly and would resurrect deleted tuples.
    Mutated,
}

impl fmt::Display for OuterjoinFdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OuterjoinFdError::NotGammaAcyclic => {
                write!(
                    f,
                    "schema is not γ-acyclic: outerjoins cannot compute the full disjunction"
                )
            }
            OuterjoinFdError::Disconnected => write!(f, "relations are not connected"),
            OuterjoinFdError::NullsInSource => {
                write!(
                    f,
                    "source relations contain nulls, unsupported by the outerjoin baseline"
                )
            }
            OuterjoinFdError::Mutated => {
                write!(
                    f,
                    "database has been mutated; the outerjoin baseline reads raw rows"
                )
            }
        }
    }
}

impl std::error::Error for OuterjoinFdError {}

/// Computes the full disjunction as padded tuples via a connected
/// sequence of binary full outerjoins followed by subsumption removal.
/// Valid exactly on connected, γ-acyclic, null-free databases.
pub fn outerjoin_fd(db: &Database) -> Result<DerivedRelation, OuterjoinFdError> {
    if db.has_mutations() {
        return Err(OuterjoinFdError::Mutated);
    }
    let has_nulls = db
        .relations()
        .iter()
        .any(|r| r.rows().any(|row| row.iter().any(|v| v.is_null())));
    if has_nulls {
        return Err(OuterjoinFdError::NullsInSource);
    }
    if !Hypergraph::of_database(db).is_gamma_acyclic() {
        return Err(OuterjoinFdError::NotGammaAcyclic);
    }
    let order = connected_ordering(db).ok_or(OuterjoinFdError::Disconnected)?;
    Ok(outerjoin_sequence(
        db,
        &order.iter().map(|r| r.index()).collect::<Vec<_>>(),
    ))
}

/// The raw outerjoin sequence without the γ-acyclicity/null guards —
/// exposed so tests and benchmarks can demonstrate *why* the guards exist
/// (on γ-cyclic schemas the result diverges from the full disjunction).
pub fn outerjoin_sequence(db: &Database, order: &[usize]) -> DerivedRelation {
    assert!(!order.is_empty(), "need at least one relation");
    let mut acc = DerivedRelation::from_relation(db, fd_relational::RelId(order[0] as u16));
    for &idx in &order[1..] {
        let next = DerivedRelation::from_relation(db, fd_relational::RelId(idx as u16));
        acc = full_outerjoin(&acc, &next);
    }
    remove_subsumed(&mut acc);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_core::{padded_relation, FdQuery};
    use fd_relational::{DatabaseBuilder, Value};

    /// A null-free γ-acyclic chain for baseline agreement tests.
    fn chain_db() -> Database {
        let mut b = DatabaseBuilder::new();
        b.relation("R", &["A", "B"])
            .row([1, 10])
            .row([2, 20])
            .row([3, 30]);
        b.relation("S", &["B", "C"])
            .row([10, 100])
            .row([10, 101])
            .row([40, 400]);
        b.relation("T", &["C", "D"])
            .row([100, 1000])
            .row([500, 5000]);
        b.build().unwrap()
    }

    fn sorted_rows(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
        rows.sort();
        rows
    }

    #[test]
    fn outerjoin_matches_incremental_on_gamma_acyclic_chain() {
        let db = chain_db();
        let oj = outerjoin_fd(&db).unwrap();
        let fd = FdQuery::over(&db).run().unwrap().into_sets();
        let fd_rows = sorted_rows(padded_relation(&db, &fd));
        let oj_rows = sorted_rows(oj.rows.iter().map(|r| r.to_vec()).collect());
        assert_eq!(fd_rows, oj_rows);
    }

    #[test]
    fn outerjoin_matches_incremental_on_star() {
        let mut b = DatabaseBuilder::new();
        b.relation("Hub", &["K", "X"]).row([1, 7]).row([2, 8]);
        b.relation("SpokeA", &["K", "A"]).row([1, 70]).row([3, 90]);
        b.relation("SpokeB", &["K", "B"])
            .row([1, 700])
            .row([2, 800]);
        let db = b.build().unwrap();
        let oj = outerjoin_fd(&db).unwrap();
        let fd = FdQuery::over(&db).run().unwrap().into_sets();
        assert_eq!(
            sorted_rows(padded_relation(&db, &fd)),
            sorted_rows(oj.rows.iter().map(|r| r.to_vec()).collect())
        );
    }

    #[test]
    fn refuses_gamma_cyclic_schemas() {
        // {AB, BC, ABC} is α-acyclic but γ-cyclic.
        let mut b = DatabaseBuilder::new();
        b.relation("R", &["A", "B"]).row([1, 2]);
        b.relation("S", &["B", "C"]).row([2, 3]);
        b.relation("U", &["A", "B", "C"]).row([1, 2, 3]);
        let db = b.build().unwrap();
        assert_eq!(outerjoin_fd(&db), Err(OuterjoinFdError::NotGammaAcyclic));
    }

    #[test]
    fn refuses_null_sources() {
        let db = fd_relational::tourist_database();
        assert_eq!(outerjoin_fd(&db), Err(OuterjoinFdError::NullsInSource));
    }

    #[test]
    fn refuses_disconnected_databases() {
        let mut b = DatabaseBuilder::new();
        b.relation("P", &["A"]).row([1]);
        b.relation("Q", &["B"]).row([2]);
        let db = b.build().unwrap();
        assert_eq!(outerjoin_fd(&db), Err(OuterjoinFdError::Disconnected));
    }

    #[test]
    fn refuses_mutated_databases() {
        let mut b = DatabaseBuilder::new();
        b.relation("R", &["A", "B"]).row([1, 2]).row([3, 4]);
        b.relation("S", &["B", "C"]).row([2, 5]);
        let mut db = b.build().unwrap();
        assert!(outerjoin_fd(&db).is_ok());
        // Tombstoned rows would otherwise be resurrected by the raw scan.
        db.remove_tuple(fd_relational::TupleId(1)).unwrap();
        assert_eq!(outerjoin_fd(&db), Err(OuterjoinFdError::Mutated));
    }
}
