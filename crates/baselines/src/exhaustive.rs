//! Exhibits for Proposition 5.1: top-(1, f_sum) is NP-hard.
//!
//! The proposition's reduction: with `imp(t) = 1` for all tuples, the
//! highest-f_sum tuple set has `n` members **iff** the natural join of
//! the relations is non-empty — and join non-emptiness is NP-complete.
//! So any exact top-1 algorithm for `f_sum` does the work of a join
//! emptiness test. [`exhaustive_top1_fsum`] is the honest exponential
//! search; the NP-hardness benchmark (experiment E7) contrasts its blowup
//! with the polynomial top-1 for the 1-determined `f_max`.

use crate::brute::oracle_fd;
use fd_core::{FSum, ImpScores, RankingFunction, TupleSet};
use fd_relational::join::natural_join_all;
use fd_relational::{Database, RelId};

/// The exact top-1 answer under `f_sum`, by exhaustive enumeration of all
/// maximal JCC sets. Exponential in the worst case — that is the point.
pub fn exhaustive_top1_fsum(db: &Database, imp: &ImpScores) -> Option<(TupleSet, f64)> {
    let f = FSum::new(imp);
    oracle_fd(db)
        .into_iter()
        .map(|s| {
            let r = f.rank(db, &s);
            (s, r)
        })
        .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
}

/// Proposition 5.1's reduction, run forward: decides natural-join
/// non-emptiness through the top-(1, f_sum) problem with unit
/// importances.
pub fn join_nonempty_via_fsum(db: &Database) -> bool {
    let imp = ImpScores::uniform(db, 1.0);
    match exhaustive_top1_fsum(db, &imp) {
        Some((_, best)) => best as usize == db.num_relations(),
        None => false,
    }
}

/// Direct join non-emptiness (the NP-complete side of the reduction),
/// used to validate the reduction in tests.
pub fn join_nonempty_direct(db: &Database) -> bool {
    let rels: Vec<RelId> = (0..db.num_relations() as u16).map(RelId).collect();
    if rels.is_empty() {
        return false;
    }
    !natural_join_all(db, &rels).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_relational::{tourist_database, DatabaseBuilder};

    #[test]
    fn reduction_agrees_with_direct_join_on_joinable_database() {
        let mut b = DatabaseBuilder::new();
        b.relation("R", &["A", "B"]).row([1, 2]);
        b.relation("S", &["B", "C"]).row([2, 3]);
        b.relation("T", &["C", "D"]).row([3, 4]);
        let db = b.build().unwrap();
        assert!(join_nonempty_direct(&db));
        assert!(join_nonempty_via_fsum(&db));
    }

    #[test]
    fn reduction_agrees_on_non_joinable_database() {
        let mut b = DatabaseBuilder::new();
        b.relation("R", &["A", "B"]).row([1, 2]);
        b.relation("S", &["B", "C"]).row([9, 3]); // B mismatch
        b.relation("T", &["C", "D"]).row([3, 4]);
        let db = b.build().unwrap();
        assert!(!join_nonempty_direct(&db));
        assert!(!join_nonempty_via_fsum(&db));
    }

    #[test]
    fn tourist_database_join_is_nonempty() {
        // The paper notes the natural join of Table 1 is the single tuple
        // (Canada, London, diverse, Ramada, 3, Air Show).
        let db = tourist_database();
        assert!(join_nonempty_direct(&db));
        assert!(join_nonempty_via_fsum(&db));
        let imp = ImpScores::uniform(&db, 1.0);
        let (best, score) = exhaustive_top1_fsum(&db, &imp).unwrap();
        assert_eq!(score, 3.0);
        assert_eq!(best.label(&db), "{c1, a2, s1}");
    }
}
