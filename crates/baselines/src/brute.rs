//! Brute-force oracles.
//!
//! Ground truth for every algorithm in the workspace: enumerate *all*
//! join-consistent connected tuple sets by exhaustive growth and keep the
//! maximal ones. Exponential in the worst case — use only on small
//! databases (tests, property checks, the NP-hardness demonstration).

use fd_core::jcc::{add_tuple, can_add};
use fd_core::{ApproxJoin, RankingFunction, Stats, TupleSet};
use fd_relational::fxhash::FxHashSet;
use fd_relational::{Database, TupleId};

/// Every JCC tuple set of the database (not only the maximal ones),
/// discovered by connectivity-preserving growth from each singleton.
pub fn all_jcc_sets(db: &Database) -> Vec<TupleSet> {
    let mut stats = Stats::new();
    let mut seen: FxHashSet<Box<[TupleId]>> = FxHashSet::default();
    let mut out: Vec<TupleSet> = Vec::new();
    let mut stack: Vec<TupleSet> = db
        .all_tuples()
        .map(|t| TupleSet::singleton(db, t))
        .collect();
    while let Some(set) = stack.pop() {
        if !seen.insert(set.tuples().into()) {
            continue;
        }
        for t in db.all_tuples() {
            if !set.contains(t) && can_add(db, &set, t, &mut stats) {
                stack.push(add_tuple(db, &set, t));
            }
        }
        out.push(set);
    }
    out
}

/// The full disjunction by definition: the maximal JCC tuple sets,
/// canonically ordered.
pub fn oracle_fd(db: &Database) -> Vec<TupleSet> {
    let all = all_jcc_sets(db);
    keep_maximal(all)
}

/// The `(A, τ)`-approximate full disjunction by definition (Def. 6.2):
/// maximal tuple sets with `A(T) ≥ τ`.
pub fn oracle_afd<A: ApproxJoin>(db: &Database, a: &A, tau: f64) -> Vec<TupleSet> {
    // Growth through acceptable connected sets reaches every acceptable
    // set: A is antitone, so all connected subsets of an acceptable set
    // are acceptable.
    let mut seen: FxHashSet<Box<[TupleId]>> = FxHashSet::default();
    let mut out: Vec<TupleSet> = Vec::new();
    let mut stack: Vec<TupleSet> = db
        .all_tuples()
        .map(|t| TupleSet::singleton(db, t))
        .filter(|s| a.score(db, s.tuples()) >= tau)
        .collect();
    while let Some(set) = stack.pop() {
        if !seen.insert(set.tuples().into()) {
            continue;
        }
        for t in db.all_tuples() {
            if set.contains(t) || set.tuple_from(db, db.rel_of(t)).is_some() {
                continue;
            }
            let mut members = set.tuples().to_vec();
            let pos = members.partition_point(|&x| x < t);
            members.insert(pos, t);
            if a.score(db, &members) >= tau {
                stack.push(fd_core::jcc::rebuild(db, members));
            }
        }
        out.push(set);
    }
    keep_maximal(out)
}

/// The top-k answers by definition: rank every maximal set, sort
/// descending (ties by canonical order), take `k`.
pub fn oracle_top_k<F: RankingFunction>(db: &Database, f: &F, k: usize) -> Vec<(TupleSet, f64)> {
    let mut ranked: Vec<(TupleSet, f64)> = oracle_fd(db)
        .into_iter()
        .map(|s| {
            let r = f.rank(db, &s);
            (s, r)
        })
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranked.truncate(k);
    ranked
}

/// Filters a collection down to its ⊆-maximal members, canonically
/// ordered.
pub fn keep_maximal(mut sets: Vec<TupleSet>) -> Vec<TupleSet> {
    sets.sort_by_key(|s| std::cmp::Reverse(s.len()));
    let mut out: Vec<TupleSet> = Vec::new();
    for s in sets {
        if !out.iter().any(|m| s.is_subset_of(m)) {
            out.push(s);
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_core::{canonicalize, FdQuery};
    use fd_relational::tourist_database;

    #[test]
    fn oracle_matches_table_2() {
        let db = tourist_database();
        let oracle = oracle_fd(&db);
        assert_eq!(oracle.len(), 6);
        let incremental = canonicalize(FdQuery::over(&db).run().unwrap().into_sets());
        assert_eq!(oracle, incremental);
    }

    #[test]
    fn all_jcc_sets_counts_tourist_database() {
        let db = tourist_database();
        let all = all_jcc_sets(&db);
        // 10 singletons + pairs {c1,a1},{c1,a2},{c1,s1},{c1,s2},{a2,s1},
        // {c2,s3},{c2,s4},{c3,a3} + triple {c1,a2,s1} = 19.
        assert_eq!(all.len(), 19);
    }

    #[test]
    fn keep_maximal_filters_subsets() {
        let db = tourist_database();
        let all = all_jcc_sets(&db);
        let maximal = keep_maximal(all);
        assert_eq!(maximal.len(), 6);
    }

    #[test]
    fn oracle_top_k_orders_by_rank() {
        use fd_core::{FMax, ImpScores};
        let db = tourist_database();
        let imp = ImpScores::from_fn(&db, |t| t.0 as f64);
        let f = FMax::new(&imp);
        let top = oracle_top_k(&db, &f, 3);
        assert_eq!(top.len(), 3);
        assert!(top[0].1 >= top[1].1 && top[1].1 >= top[2].1);
    }
}
