//! # fd-baselines
//!
//! The comparison algorithms for the paper's evaluation:
//!
//! * [`brute`] — exponential oracles defining ground truth for `FD`,
//!   `AFD` and top-k on small inputs;
//! * [`outerjoin_fd()`] — the Rajaraman–Ullman (1996) outerjoin-sequence
//!   algorithm, valid exactly on connected γ-acyclic null-free schemas
//!   (reference \[2\] of the paper);
//! * [`pio_fd()`] — a Kanza–Sagiv (2003) style batch algorithm: correct
//!   and polynomial in input+output, but returns nothing until the whole
//!   result is computed and scans globally (reference \[3\]);
//! * [`exhaustive`] — the NP-hardness exhibits for top-(1, f_sum)
//!   (Proposition 5.1);
//! * [`naive_topk`] — compute-all-then-sort, the comparator for
//!   `PRIORITYINCREMENTALFD`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod brute;
pub mod exhaustive;
pub mod naive_topk;
pub mod outerjoin_fd;
pub mod pio_fd;

pub use brute::{all_jcc_sets, keep_maximal, oracle_afd, oracle_fd, oracle_top_k};
pub use exhaustive::{exhaustive_top1_fsum, join_nonempty_direct, join_nonempty_via_fsum};
pub use naive_topk::naive_top_k;
pub use outerjoin_fd::{outerjoin_fd, outerjoin_sequence, OuterjoinFdError};
pub use pio_fd::pio_fd;
