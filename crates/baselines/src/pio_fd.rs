//! A Kanza–Sagiv (2003) style batch algorithm — reference \[3\] of the
//! paper, the state of the art `INCREMENTALFD` improves on.
//!
//! No source code for \[3\] exists; this is a behavioral reconstruction
//! preserving the two properties the paper's comparison rests on:
//!
//! 1. **Batch output**: nothing is returned until the whole full
//!    disjunction is computed ("the algorithm of \[3\] does not return any
//!    tuples until all processing is complete") — the `first-k`
//!    experiment measures exactly this;
//! 2. **Heavier polynomial**: every candidate insertion scans the entire
//!    pool of results for duplicates (linked-list style, no hashing, no
//!    `Complete`/`Incomplete` split), contributing the extra factors that
//!    separate `O(s²n⁵f²)` from `INCREMENTALFD`'s `O(sn³f²)`.
//!
//! The output is exactly `FD(R)` (verified against the oracle and the
//! incremental algorithm in tests).

use fd_core::jcc::{extend_to_maximal, maximal_subset_with};
use fd_core::{Stats, TupleSet};
use fd_relational::Database;

/// Computes the entire full disjunction as one batch. Returns the result
/// sets (canonically ordered) and the operation counters.
pub fn pio_fd(db: &Database) -> (Vec<TupleSet>, Stats) {
    let mut stats = Stats::new();
    // Pool of discovered maximal sets; scanned linearly on every check.
    let mut pool: Vec<TupleSet> = Vec::new();
    let mut worklist: Vec<usize> = Vec::new();

    let push_if_new =
        |pool: &mut Vec<TupleSet>, worklist: &mut Vec<usize>, stats: &mut Stats, set: TupleSet| {
            // Global linear duplicate scan — the baseline's defining cost.
            for existing in pool.iter() {
                stats.complete_scans += 1;
                if existing.tuples() == set.tuples() {
                    return;
                }
            }
            pool.push(set);
            worklist.push(pool.len() - 1);
        };

    // Seed: the maximal extension of every singleton.
    for t in db.all_tuples() {
        let seed = extend_to_maximal(db, TupleSet::singleton(db, t), &mut stats);
        push_if_new(&mut pool, &mut worklist, &mut stats, seed);
    }

    // Saturate: derive new maximal sets from every (set, tuple) pair.
    while let Some(idx) = worklist.pop() {
        for tb in db.all_tuples() {
            stats.candidate_scans += 1;
            let current = pool[idx].clone();
            if current.contains(tb) {
                continue;
            }
            let t_prime = maximal_subset_with(db, &current, tb, &mut stats);
            let maximal = extend_to_maximal(db, t_prime, &mut stats);
            push_if_new(&mut pool, &mut worklist, &mut stats, maximal);
        }
    }

    stats.results = pool.len() as u64;
    pool.sort();
    (pool, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::oracle_fd;
    use fd_core::{canonicalize, FdQuery};
    use fd_relational::tourist_database;

    #[test]
    fn batch_algorithm_matches_oracle_and_incremental() {
        let db = tourist_database();
        let (batch, _) = pio_fd(&db);
        assert_eq!(batch, oracle_fd(&db));
        assert_eq!(
            batch,
            canonicalize(FdQuery::over(&db).run().unwrap().into_sets())
        );
    }

    #[test]
    fn batch_scans_far_more_than_incremental() {
        let db = tourist_database();
        let (_, batch_stats) = pio_fd(&db);
        let mut it = fd_core::FdIter::new(&db);
        while it.next().is_some() {}
        let inc_stats = it.stats_total();
        // The reconstruction must actually be more expensive in scan work;
        // otherwise the benchmark comparison would be vacuous.
        assert!(
            batch_stats.candidate_scans + batch_stats.complete_scans
                > inc_stats.candidate_scans + inc_stats.total_store_scans(),
            "batch {:?} vs incremental {:?}",
            batch_stats,
            inc_stats
        );
    }

    #[test]
    fn handles_edge_cases() {
        use fd_relational::{DatabaseBuilder, NULL};
        let mut b = DatabaseBuilder::new();
        b.relation("P", &["A", "B"])
            .row([1, 2])
            .row_values(vec![3.into(), NULL]);
        b.relation("Q", &["B", "C"]).row([2, 4]);
        b.relation("Z", &["D"]).row([0]);
        let db = b.build().unwrap();
        let (batch, _) = pio_fd(&db);
        assert_eq!(batch, oracle_fd(&db));
    }
}
