//! The "compute everything, then sort" top-k baseline.
//!
//! The natural comparator for `PRIORITYINCREMENTALFD` (experiment E6):
//! materialize the entire full disjunction with the plain incremental
//! algorithm, rank every result, sort, truncate. Polynomial in the
//! *whole* output even when `k` is tiny — the ranked algorithm's
//! advantage is precisely not paying `f` when `k ≪ f`.

use fd_core::{FdIter, RankingFunction, TupleSet};
use fd_relational::Database;

/// Top-k by full materialization and sorting.
pub fn naive_top_k<F: RankingFunction>(db: &Database, f: &F, k: usize) -> Vec<(TupleSet, f64)> {
    let mut ranked: Vec<(TupleSet, f64)> = FdIter::new(db)
        .map(|s| {
            let r = f.rank(db, &s);
            (s, r)
        })
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranked.truncate(k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_core::{FMax, FdQuery, ImpScores};
    use fd_relational::tourist_database;

    #[test]
    fn naive_and_ranked_agree_on_rank_sequences() {
        let db = tourist_database();
        let imp = ImpScores::from_fn(&db, |t| (t.0 % 4) as f64);
        let f = FMax::new(&imp);
        for k in [1, 3, 6, 10] {
            let naive: Vec<f64> = naive_top_k(&db, &f, k).into_iter().map(|x| x.1).collect();
            let ranked: Vec<f64> = FdQuery::over(&db)
                .ranked(&f)
                .top_k(k)
                .run()
                .unwrap()
                .ranks()
                .unwrap()
                .to_vec();
            assert_eq!(naive, ranked, "k = {k}");
        }
    }
}
